"""Unit tests for DP0 / DP1 / DP2 and the sync queue."""

import numpy as np
import pytest

from repro.core.partition import (
    PartitionPlan,
    dp0,
    dp1,
    dp2,
    even_partition,
    exposed_sync_time,
)


class TestPartitionPlan:
    def test_valid(self):
        p = PartitionPlan("x", (0.25, 0.75))
        assert p.n_workers == 2

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PartitionPlan("x", (0.5, 0.4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            PartitionPlan("x", (-0.1, 1.1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            PartitionPlan("x", ())

    def test_imbalance(self):
        p = PartitionPlan("x", (0.5, 0.5), predicted_times=(1.0, 1.5))
        assert p.imbalance() == pytest.approx(0.5)

    def test_imbalance_without_times(self):
        assert PartitionPlan("x", (1.0,)).imbalance() == 0.0


class TestEven:
    def test_uniform(self):
        p = even_partition(4)
        assert p.fractions == (0.25, 0.25, 0.25, 0.25)
        assert p.strategy == "even"

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_partition(0)


class TestDP0:
    def test_eq6_formula(self):
        """x_i = (1/T_i) / sum(1/T_j): a 2x faster worker gets 2x data."""
        p = dp0([1.0, 2.0, 4.0])
        assert p.fractions[0] == pytest.approx(4 / 7)
        assert p.fractions[1] == pytest.approx(2 / 7)
        assert p.fractions[2] == pytest.approx(1 / 7)

    def test_predicted_times_equal(self):
        """Theorem 1: under the measured rates, all workers finish together."""
        p = dp0([3.0, 5.0, 7.0, 11.0])
        assert max(p.predicted_times) == pytest.approx(min(p.predicted_times))

    def test_homogeneous(self):
        p = dp0([2.0, 2.0])
        assert p.fractions == (0.5, 0.5)

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            dp0([1.0, 0.0])
        with pytest.raises(ValueError):
            dp0([])


class TestDP1:
    def _measure_with_bias(self, true_rates):
        """Measurement model: time_i = x_i / rate_i."""

        def measure(x):
            return [xi / r for xi, r in zip(x, true_rates)]

        return measure

    def test_corrects_runtime_bias(self):
        """DP0 was computed from wrong (independent) rates; DP1 must
        rebalance against the true runtime rates."""
        independent = [1.0, 1.0, 0.5, 0.5]  # times: cpu, cpu, gpu, gpu
        start = dp0(independent)
        # at runtime the CPUs are 20% slower than measured
        true_rates = [0.8, 0.8, 2.0, 2.0]
        plan = dp1(start, self._measure_with_bias(true_rates),
                   is_gpu=[False, False, True, True])
        times = np.asarray(plan.predicted_times)
        cpu_avg = times[:2].mean()
        gpu_avg = times[2:].mean()
        assert abs(cpu_avg - gpu_avg) / min(cpu_avg, gpu_avg) <= 0.1

    def test_terminates_within_rounds(self):
        start = dp0([1.0, 0.5])
        plan = dp1(start, self._measure_with_bias([0.5, 2.0]),
                   is_gpu=[False, True], max_rounds=8)
        assert plan.rounds <= 8

    def test_noop_when_already_balanced(self):
        start = dp0([1.0, 0.5])
        plan = dp1(start, self._measure_with_bias([1.0, 2.0]),
                   is_gpu=[False, True])
        assert plan.rounds == 0
        np.testing.assert_allclose(plan.fractions, start.fractions)

    def test_homogeneous_class_short_circuits(self):
        start = dp0([1.0, 1.0])
        plan = dp1(start, self._measure_with_bias([1.0, 1.0]),
                   is_gpu=[True, True])
        assert plan.rounds == 0

    def test_fractions_stay_simplex(self):
        start = dp0([1.0, 0.4, 0.2])
        plan = dp1(start, self._measure_with_bias([0.6, 2.0, 5.0]),
                   is_gpu=[False, True, True])
        fr = np.asarray(plan.fractions)
        assert fr.sum() == pytest.approx(1.0)
        assert np.all(fr >= 0)

    def test_mask_length_checked(self):
        with pytest.raises(ValueError):
            dp1(dp0([1.0, 1.0]), lambda x: x, is_gpu=[True])

    def test_measure_length_checked(self):
        with pytest.raises(ValueError):
            dp1(dp0([1.0, 1.0]), lambda x: [1.0], is_gpu=[True, False])


class TestDP2:
    def test_staggers_times_by_sync(self):
        base = PartitionPlan("dp1", (0.25,) * 4, predicted_times=(1.0, 1.0, 1.0, 1.0))
        plan = dp2(base, sync_time=0.1)
        times = sorted(plan.predicted_times)
        gaps = np.diff(times)
        # Eq. 7: consecutive finishes separated by ~T_sync (before renorm)
        assert np.allclose(gaps, gaps[0], rtol=0.05)
        assert gaps[0] == pytest.approx(0.1, rel=0.15)

    def test_zero_sync_is_noop(self):
        base = PartitionPlan("dp1", (0.5, 0.5), predicted_times=(1.0, 1.0))
        plan = dp2(base, sync_time=0.0)
        np.testing.assert_allclose(plan.fractions, base.fractions)

    def test_median_preserved_for_odd_count(self):
        base = PartitionPlan("dp1", (1 / 3,) * 3, predicted_times=(1.0, 1.0, 1.0))
        plan = dp2(base, sync_time=0.2)
        assert sorted(plan.predicted_times)[1] == pytest.approx(1.0, rel=0.1)

    def test_custom_order(self):
        base = PartitionPlan("dp1", (0.5, 0.5), predicted_times=(1.0, 1.0))
        plan = dp2(base, sync_time=0.2, order=[1, 0])
        # worker 1 ranked first -> finishes earlier than worker 0
        assert plan.predicted_times[1] < plan.predicted_times[0]

    def test_bad_order_rejected(self):
        base = PartitionPlan("dp1", (0.5, 0.5), predicted_times=(1.0, 1.0))
        with pytest.raises(ValueError, match="permutation"):
            dp2(base, 0.1, order=[0, 0])

    def test_requires_predicted_times(self):
        with pytest.raises(ValueError, match="predicted times"):
            dp2(PartitionPlan("dp1", (1.0,)), 0.1)

    def test_reduces_exposed_sync(self):
        """The whole point of DP2: staggered finishes pipeline the server's
        merges, shrinking the exposed sync tail."""
        tsync = 0.1
        base = PartitionPlan("dp1", (0.25,) * 4, predicted_times=(1.0,) * 4)
        plan = dp2(base, tsync)
        exposed_dp1 = exposed_sync_time(base.predicted_times, tsync)
        exposed_dp2 = exposed_sync_time(plan.predicted_times, tsync)
        assert exposed_dp2 < exposed_dp1


class TestExposedSync:
    def test_simultaneous_finishes_serialize(self):
        assert exposed_sync_time([1.0, 1.0, 1.0], 0.1) == pytest.approx(0.3)

    def test_perfectly_staggered_exposes_one(self):
        assert exposed_sync_time([1.0, 1.1, 1.2], 0.1) == pytest.approx(0.1)

    def test_wide_stagger_exposes_one(self):
        assert exposed_sync_time([1.0, 2.0, 3.0], 0.1) == pytest.approx(0.1)

    def test_empty(self):
        assert exposed_sync_time([], 0.1) == 0.0

    def test_zero_sync(self):
        assert exposed_sync_time([1.0, 2.0], 0.0) == 0.0

    def test_per_push_durations(self):
        # chunked pushes with tsync/4 each, arriving staggered: only the
        # last chunk's merge is exposed
        finishes = [1.0, 1.1, 1.2, 1.3]
        exposed = exposed_sync_time(finishes, [0.025] * 4)
        assert exposed == pytest.approx(0.025)

    def test_duration_length_checked(self):
        with pytest.raises(ValueError, match="one sync duration"):
            exposed_sync_time([1.0, 2.0], [0.1])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            exposed_sync_time([1.0], [-0.1])
