"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro import (
    CuMFSGD,
    FPSGD,
    HCCConfig,
    HCCMF,
    HogwildSGD,
    NETFLIX,
    PartitionStrategy,
    paper_workstation,
)
from repro.core.config import CommConfig
from repro.data.datasets import YAHOO_R2


class TestHCCVsBaselines:
    """Figure 7's headline: HCC converges like the single-processor
    methods while the modeled time says it runs faster."""

    @pytest.fixture(scope="class")
    def data(self):
        return NETFLIX.scaled(20_000).generate(seed=11)

    def test_equivalent_convergence(self, data):
        epochs, k, lr = 8, 8, 0.01
        hcc = HCCMF(
            paper_workstation(16), NETFLIX,
            HCCConfig(k=k, epochs=epochs, learning_rate=lr, seed=1),
            ratings=data,
        ).train()
        fp = FPSGD(k=k, threads=4, lr=lr, reg=NETFLIX.reg, seed=1)
        fp.fit(data, epochs=epochs)
        cu = CuMFSGD(k=k, gpu_threads=2048, lr=lr, reg=NETFLIX.reg, seed=1)
        cu.fit(data, epochs=epochs)

        final = [hcc.final_rmse, fp.history.final_rmse, cu.history.final_rmse]
        assert max(final) - min(final) < 0.1  # same convergence regime

    def test_hcc_faster_in_model_time(self, data):
        hcc = HCCMF(paper_workstation(16), NETFLIX, HCCConfig(k=128, epochs=20)).train()
        from repro.experiments.runners import single_processor_time

        t_gpu = single_processor_time("2080S", NETFLIX, epochs=20)
        t_cpu = single_processor_time("6242", NETFLIX, epochs=20, threads=24)
        assert hcc.total_time < t_gpu < t_cpu


class TestStrategyStackEndToEnd:
    def test_every_partition_strategy_trains(self):
        data = NETFLIX.scaled(8000).generate(seed=2)
        for strat in PartitionStrategy:
            cfg = HCCConfig(
                k=8, epochs=3, learning_rate=0.01, seed=0, partition=strat
            )
            res = HCCMF(paper_workstation(16), NETFLIX, cfg, ratings=data).train()
            assert res.rmse_history[-1] < res.rmse_history[0], strat

    def test_comm_strategies_do_not_change_convergence_class(self):
        data = NETFLIX.scaled(8000).generate(seed=2)
        results = {}
        for label, comm in [
            ("plain", CommConfig()),
            ("fp16", CommConfig(fp16=True)),
            ("streams", CommConfig(streams=4)),
        ]:
            cfg = HCCConfig(k=8, epochs=5, learning_rate=0.01, seed=0, comm=comm)
            res = HCCMF(paper_workstation(16), NETFLIX, cfg, ratings=data).train()
            results[label] = res.final_rmse
        base = results["plain"]
        for label, rmse in results.items():
            assert rmse == pytest.approx(base, abs=0.05), label

    def test_sim_time_ranks_strategies_correctly(self):
        """even > dp0 > dp1 on a compute-bound dataset."""
        times = {}
        for strat in ("even", "dp0", "dp1"):
            cfg = HCCConfig(k=128, epochs=20, partition=PartitionStrategy(strat))
            times[strat] = HCCMF(paper_workstation(16), NETFLIX, cfg).train().total_time
        assert times["even"] > times["dp0"] > times["dp1"]


class TestHogwildTheory:
    def test_sparser_data_converges_closer_to_serial(self):
        """Hogwild's premise: sparse data -> fewer conflicts -> async
        matches serial-style convergence more closely."""
        from repro.data.synthetic import SyntheticConfig, generate_low_rank

        sparse = generate_low_rank(SyntheticConfig(m=600, n=400, nnz=6000), seed=1)
        dense = generate_low_rank(SyntheticConfig(m=40, n=30, nnz=1100), seed=1)

        def gap(data):
            ref = HogwildSGD(k=6, lr=0.01, batch_size=1, seed=0)
            ref.fit(data, epochs=4)
            async_ = HogwildSGD(k=6, lr=0.01, batch_size=512, seed=0)
            async_.fit(data, epochs=4)
            return abs(ref.history.final_rmse - async_.history.final_rmse)

        assert gap(sparse) < gap(dense) + 0.05


class TestCrossDatasetShapes:
    def test_r2_prefers_cpu_shares_more_than_netflix(self):
        """On R2, the GPUs collapse (Table 4), so DP gives CPUs a larger
        share than they get on Netflix."""
        def cpu_share(spec):
            hcc = HCCMF(paper_workstation(16), spec, HCCConfig(k=128))
            plan = hcc.prepare()
            return sum(
                f for w, f in zip(hcc.platform.workers, plan.fractions) if w.is_cpu
            )

        assert cpu_share(YAHOO_R2) > cpu_share(NETFLIX) + 0.1
