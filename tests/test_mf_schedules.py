"""Unit tests for learning-rate schedules."""

import pytest

from repro.mf.schedules import (
    BoldDriver,
    ConstantLR,
    ExponentialDecay,
    InverseTimeDecay,
)
from repro.mf.sgd import HogwildSGD


class TestConstant:
    def test_flat(self):
        s = ConstantLR(0.01)
        assert s(0) == s(100) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            ConstantLR(0.01)(-1)


class TestInverseTime:
    def test_decays(self):
        s = InverseTimeDecay(0.1, decay=0.5)
        assert s(0) == pytest.approx(0.1)
        assert s(2) == pytest.approx(0.1 / 2.0)
        assert s(10) < s(5) < s(0)

    def test_zero_decay_is_constant(self):
        s = InverseTimeDecay(0.1, decay=0.0)
        assert s(50) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            InverseTimeDecay(0.0)
        with pytest.raises(ValueError):
            InverseTimeDecay(0.1, decay=-1)


class TestExponential:
    def test_geometric(self):
        s = ExponentialDecay(0.2, gamma=0.5)
        assert s(0) == pytest.approx(0.2)
        assert s(3) == pytest.approx(0.2 * 0.125)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0.1, gamma=1.5)
        with pytest.raises(ValueError):
            ExponentialDecay(0.1, gamma=0.0)


class TestBoldDriver:
    def test_grows_on_improvement(self):
        s = BoldDriver(0.1, grow=1.1, shrink=0.5)
        s.observe(1.0)
        s.observe(0.9)  # improved
        assert s(2) == pytest.approx(0.11)

    def test_shrinks_on_regression(self):
        s = BoldDriver(0.1, grow=1.1, shrink=0.5)
        s.observe(1.0)
        s.observe(1.2)  # worse
        assert s(2) == pytest.approx(0.05)

    def test_first_observation_neutral(self):
        s = BoldDriver(0.1)
        s.observe(5.0)
        assert s(1) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoldDriver(0.0)
        with pytest.raises(ValueError):
            BoldDriver(0.1, grow=0.9)
        with pytest.raises(ValueError):
            BoldDriver(0.1, shrink=1.0)


class TestTrainerIntegration:
    def test_decay_schedule_in_hogwild(self, small_ratings):
        h = HogwildSGD(k=8, seed=0, lr_schedule=InverseTimeDecay(0.02, 0.3))
        h.fit(small_ratings, epochs=6)
        assert h.history.rmse[-1] < h.history.rmse[0]

    def test_bold_driver_observed(self, small_ratings):
        driver = BoldDriver(0.01)
        h = HogwildSGD(k=8, seed=0, lr_schedule=driver)
        h.fit(small_ratings, epochs=5)
        # convergence improved every epoch, so the rate must have grown
        assert driver.lr > 0.01

    def test_schedule_beats_none_rarely_diverges(self, small_ratings):
        plain = HogwildSGD(k=8, lr=0.02, seed=0)
        decayed = HogwildSGD(k=8, seed=0, lr_schedule=ExponentialDecay(0.02, 0.9))
        plain.fit(small_ratings, epochs=8)
        decayed.fit(small_ratings, epochs=8)
        assert decayed.history.rmse[-1] < decayed.history.rmse[0]
