"""Unit tests for dataset structure analysis."""

import numpy as np
import pytest

from repro.data.analysis import (
    DatasetProfile,
    conflict_probability,
    gini,
    profile,
    profile_spec,
    render_profile,
)
from repro.data.datasets import MOVIELENS_20M, NETFLIX
from repro.data.ratings import RatingMatrix


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 1e6
        assert gini(counts) > 0.99

    def test_monotone_in_skew(self, rng):
        flat = rng.poisson(50, 500)
        skewed = (rng.pareto(1.2, 500) * 10).astype(int) + 1
        assert gini(skewed) > gini(flat)

    def test_bounds(self, rng):
        for _ in range(5):
            counts = rng.integers(0, 100, 50)
            assert 0.0 <= gini(counts) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([]))

    def test_all_zero(self):
        assert gini(np.zeros(5)) == 0.0


class TestConflictProbability:
    def test_zero_for_single_update(self, tiny_ratings):
        assert conflict_probability(tiny_ratings, 1) == 0.0

    def test_increases_with_batch(self, small_ratings):
        p_small = conflict_probability(small_ratings, 8)
        p_big = conflict_probability(small_ratings, 512)
        assert p_big > p_small

    def test_saturates_at_one(self, small_ratings):
        assert conflict_probability(small_ratings, 100_000) == pytest.approx(1.0)

    def test_wide_catalog_fewer_conflicts(self):
        rng = np.random.default_rng(0)
        narrow = RatingMatrix(100, 5, rng.integers(0, 100, 400),
                              rng.integers(0, 5, 400), np.ones(400, np.float32))
        wide = RatingMatrix(100, 5000, rng.integers(0, 100, 400),
                            rng.integers(0, 5000, 400), np.ones(400, np.float32))
        assert conflict_probability(wide, 64) < conflict_probability(narrow, 64)


class TestProfile:
    def test_fields(self, small_ratings):
        p = profile(small_ratings)
        assert isinstance(p, DatasetProfile)
        assert p.nnz == small_ratings.nnz
        assert p.reuse_ratio == pytest.approx(small_ratings.reuse_ratio)
        assert 0 <= p.row_gini <= 1
        assert 0 <= p.conflict_prob_4k <= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile(RatingMatrix(3, 3, [], [], []))

    def test_recommendations_row_grid(self, small_ratings):
        p = profile(small_ratings)
        recs = " ".join(p.recommended_strategies())
        assert "row grid" in recs
        assert "FP16" in recs

    def test_recommendations_column_grid(self):
        wide = RatingMatrix(5, 50, [0, 1, 2], [10, 20, 30], [1.0, 2.0, 3.0])
        p = profile(wide)
        assert any("transposition" in r for r in p.recommended_strategies())

    def test_render(self, small_ratings):
        text = render_profile(profile(small_ratings))
        assert "reuse" in text
        assert "Gini" in text
        assert "recommended" in text


class TestProfileSpec:
    def test_full_scale_values(self):
        p = profile_spec(NETFLIX)
        assert p["nnz"] == NETFLIX.nnz
        # Netflix escapes the bound after Q-only: nnz/min(m,n) ~ 5.6e3
        assert not p["comm_bound"]
        assert p["q_only_reuse"] > 5000

    def test_movielens_flagged(self):
        assert profile_spec(MOVIELENS_20M)["comm_bound"]
