"""Unit tests for shared-memory span rings and timeline assembly."""

import pytest

from repro.hardware.timeline import Phase
from repro.obs.spans import (
    SpanRecord,
    SpanRecorder,
    SpanRing,
    assemble_timeline,
    records_to_timeline,
)


@pytest.fixture
def ring():
    r = SpanRing.create(capacity=8, worker="worker-0")
    yield r
    r.unlink()


class TestSpanRing:
    def test_record_and_drain(self, ring):
        ring.record(Phase.PULL, 0, 1.0, 1.5)
        ring.record(Phase.COMPUTE, 0, 1.5, 3.0)
        records = ring.drain()
        assert records == [
            SpanRecord(Phase.PULL, 0, 1.0, 1.5),
            SpanRecord(Phase.COMPUTE, 0, 1.5, 3.0),
        ]
        assert ring.count == 2
        assert ring.dropped == 0

    def test_full_ring_drops_and_counts(self):
        ring = SpanRing.create(capacity=2, worker="w")
        try:
            for i in range(5):
                ring.record(Phase.PULL, i, float(i), float(i) + 0.5)
            assert ring.count == 2
            assert ring.dropped == 3
            # the *first* records survive; history is never rewritten
            assert [r.epoch for r in ring.drain()] == [0, 1]
        finally:
            ring.unlink()

    def test_attach_sees_creator_writes(self, ring):
        """The server drains what the worker wrote via a fresh attach
        (same-process stand-in for the cross-process path)."""
        ring.record(Phase.PUSH, 2, 4.0, 4.25)
        peer = SpanRing.attach(ring.spec)
        try:
            records = peer.drain()
            assert records[0].phase is Phase.PUSH
            assert records[0].epoch == 2
        finally:
            peer.close()

    def test_spec_capacity_round_trips(self, ring):
        assert ring.spec.capacity == 8
        assert ring.spec.worker == "worker-0"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpanRing.create(capacity=0, worker="w")

    def test_context_manager_owner_unlinks(self):
        with SpanRing.create(capacity=2, worker="w") as ring:
            spec = ring.spec
        # segment destroyed: attaching again must fail
        with pytest.raises(FileNotFoundError):
            SpanRing.attach(spec)


class TestSpanRecorder:
    def test_span_context_uses_clock(self, ring):
        ticks = iter([10.0, 11.0])
        rec = SpanRecorder(ring, clock=lambda: next(ticks))
        with rec.span(Phase.COMPUTE, 3):
            pass
        record = ring.drain()[0]
        assert (record.start, record.end) == (10.0, 11.0)
        assert record.epoch == 3

    def test_span_records_even_on_exception(self, ring):
        rec = SpanRecorder(ring)
        with pytest.raises(RuntimeError):
            with rec.span(Phase.COMPUTE, 0):
                raise RuntimeError("boom")
        assert ring.count == 1


class TestAssembleTimeline:
    def test_rebases_to_origin(self, ring):
        ring.record(Phase.PULL, 0, 100.0, 100.5)
        timeline, dropped = assemble_timeline([ring], origin=100.0)
        span = timeline.spans[0]
        assert span.start == pytest.approx(0.0)
        assert span.end == pytest.approx(0.5)
        assert dropped == 0

    def test_server_spans_get_their_own_lane(self, ring):
        ring.record(Phase.COMPUTE, 0, 0.0, 1.0)
        timeline, _ = assemble_timeline(
            [ring], server_spans=[(Phase.SYNC, 0, 1.0, 1.1)]
        )
        assert timeline.workers() == ["worker-0", "server"]
        assert timeline.phase_total(Phase.SYNC, "server") == pytest.approx(0.1)

    def test_dropped_total_across_rings(self):
        rings = [SpanRing.create(capacity=1, worker=f"w{i}") for i in range(2)]
        try:
            for ring in rings:
                ring.record(Phase.PULL, 0, 0.0, 1.0)
                ring.record(Phase.PULL, 1, 1.0, 2.0)  # dropped
            _, dropped = assemble_timeline(rings)
            assert dropped == 2
        finally:
            for ring in rings:
                ring.unlink()

    def test_records_to_timeline_returns_count(self, ring):
        from repro.hardware.timeline import Timeline

        ring.record(Phase.PULL, 0, 0.0, 1.0)
        tl = Timeline()
        n = records_to_timeline(tl, "worker-0", ring.drain())
        assert n == 1 and len(tl) == 1

    def test_records_to_timeline_epoch_offset(self, ring):
        from repro.hardware.timeline import Timeline

        ring.record(Phase.PULL, 1, 0.0, 1.0)
        tl = Timeline()
        records_to_timeline(tl, "worker-0", ring.drain(), epoch_offset=3)
        assert tl.spans[0].epoch == 4


class TestAttemptTagging:
    """A ring created for recovery attempt N tags everything it drains."""

    def test_ring_carries_attempt_through_drain(self):
        ring = SpanRing.create(capacity=4, worker="w0", attempt=2)
        try:
            ring.record(Phase.PULL, 0, 0.0, 1.0)
            record = ring.drain()[0]
            assert record.attempt == 2
        finally:
            ring.unlink()

    def test_attach_inherits_attempt_from_spec(self):
        ring = SpanRing.create(capacity=4, worker="w0", attempt=1)
        try:
            ring.record(Phase.PUSH, 0, 0.0, 0.5)
            peer = SpanRing.attach(ring.spec)
            try:
                assert peer.attempt == 1
                assert peer.drain()[0].attempt == 1
            finally:
                peer.close()
        finally:
            ring.unlink()

    def test_default_attempt_is_zero(self, ring):
        ring.record(Phase.PULL, 0, 0.0, 1.0)
        assert ring.attempt == 0
        assert ring.drain()[0].attempt == 0

    def test_timeline_spans_carry_attempt(self):
        ring = SpanRing.create(capacity=4, worker="w0", attempt=3)
        try:
            ring.record(Phase.COMPUTE, 1, 0.0, 1.0)
            timeline, _ = assemble_timeline([ring])
            assert timeline.spans[0].attempt == 3
        finally:
            ring.unlink()

    def test_multi_attempt_rings_assemble_together(self):
        """Rings from two recovery attempts coexist in one timeline —
        the preserved-spans guarantee the process backend relies on."""
        first = SpanRing.create(capacity=4, worker="w0", attempt=0)
        second = SpanRing.create(capacity=4, worker="w0", attempt=1)
        try:
            first.record(Phase.COMPUTE, 1, 0.0, 1.0)   # failed attempt
            second.record(Phase.COMPUTE, 1, 2.0, 3.0)  # the retry
            timeline, _ = assemble_timeline([first, second])
            attempts = sorted(s.attempt for s in timeline.spans)
            assert attempts == [0, 1]
            assert all(s.epoch == 1 for s in timeline.spans)
        finally:
            first.unlink()
            second.unlink()
