"""Tests for the CFG builder (:mod:`repro.analysis.cfg`)."""

import ast
import textwrap

from repro.analysis.cfg import (
    EDGE_EXC,
    EDGE_FALSE,
    EDGE_TRUE,
    build_cfg,
    may_raise,
)
from repro.analysis.flow import reaching_definitions


def cfg_of(src: str):
    tree = ast.parse(textwrap.dedent(src))
    fn = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    return build_cfg(fn)


def block_at(cfg, lineno):
    for block in cfg.blocks:
        if block.stmt is not None and block.stmt.lineno == lineno:
            return block
    raise AssertionError(f"no block holds a statement at line {lineno}")


def reachable_from(block):
    seen = {block}
    stack = [block]
    while stack:
        for succ, _ in stack.pop().succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


class TestStructure:
    def test_linear_function_reaches_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                y = g(x)
                return y
            """
        )
        assert cfg.exit in reachable_from(cfg.entry)
        # g(x) may raise, so the exception exit is reachable too
        assert cfg.raise_exit in reachable_from(cfg.entry)

    def test_call_statement_has_exception_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                g(x)
            """
        )
        block = block_at(cfg, 3)
        kinds = {kind for _, kind in block.succs}
        assert EDGE_EXC in kinds
        assert any(succ is cfg.raise_exit for succ, _ in block.succs)

    def test_if_has_true_and_false_edges(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a()
                else:
                    b()
            """
        )
        test_block = block_at(cfg, 3)
        kinds = {kind for _, kind in test_block.succs}
        assert {EDGE_TRUE, EDGE_FALSE} <= kinds
        # both arms are reachable from the test
        reach = reachable_from(test_block)
        assert block_at(cfg, 4) in reach and block_at(cfg, 6) in reach

    def test_while_loop_has_back_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    x = step(x)
            """
        )
        head = block_at(cfg, 3)
        body = block_at(cfg, 4)
        assert head in reachable_from(body)  # back edge closes the loop

    def test_break_exits_the_loop(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    break
                tail()
            """
        )
        brk = block_at(cfg, 4)
        assert block_at(cfg, 5) in reachable_from(brk)

    def test_exception_in_try_reaches_handler(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    risky(x)
                except ValueError:
                    fallback()
            """
        )
        body = block_at(cfg, 4)
        assert block_at(cfg, 6) in reachable_from(body)

    def test_raise_in_try_passes_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    raise ValueError(x)
                finally:
                    cleanup()
            """
        )
        raise_block = block_at(cfg, 4)
        reach = reachable_from(raise_block)
        assert block_at(cfg, 6) in reach  # finally body runs
        assert cfg.raise_exit in reach  # and the exception still escapes
        assert cfg.exit not in reach  # the raise never falls through

    def test_return_in_try_passes_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    return x
                finally:
                    cleanup()
            """
        )
        ret_block = block_at(cfg, 4)
        reach = reachable_from(ret_block)
        assert block_at(cfg, 6) in reach
        assert cfg.exit in reach

    def test_else_clause_not_protected_by_handlers(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    safe = 1
                except ValueError:
                    fallback()
                else:
                    risky(x)
            """
        )
        else_block = block_at(cfg, 8)
        # risky() raising must escape the function, not re-enter except
        assert cfg.raise_exit in reachable_from(else_block)
        assert block_at(cfg, 6) not in reachable_from(else_block)

    def test_rpo_starts_at_entry(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a()
                b()
            """
        )
        order = cfg.rpo()
        assert order[0] is cfg.entry
        assert set(order) == reachable_from(cfg.entry)


class TestMayRaise:
    def parse_stmt(self, src):
        return ast.parse(textwrap.dedent(src)).body[0]

    def test_safe_statements(self):
        for src in ("pass", "x = 1", "x = y", "x = (1, 2)", "shm.close()"):
            assert not may_raise(self.parse_stmt(src)), src

    def test_raising_statements(self):
        for src in (
            "f()",
            "x = f()",
            "x = a.b",
            "x = a[0]",
            "raise ValueError()",
            "x += 1",
            "assert x",
        ):
            assert may_raise(self.parse_stmt(src)), src


class TestReachingDefinitions:
    def test_branch_definitions_merge(self):
        src = """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        cfg = cfg_of(src)
        states = reaching_definitions(cfg)
        ret_block = block_at(cfg, 7)
        assert states[ret_block]["x"] == frozenset({4, 6})

    def test_redefinition_kills_previous(self):
        src = """
            def f():
                x = 1
                x = 2
                return x
            """
        cfg = cfg_of(src)
        states = reaching_definitions(cfg)
        ret_block = block_at(cfg, 5)
        assert states[ret_block]["x"] == frozenset({4})

    def test_loop_definitions_reach_header(self):
        src = """
            def f(items):
                acc = 0
                for item in items:
                    acc = step(acc, item)
                return acc
            """
        cfg = cfg_of(src)
        states = reaching_definitions(cfg)
        ret_block = block_at(cfg, 6)
        assert states[ret_block]["acc"] == frozenset({3, 5})
