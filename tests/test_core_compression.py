"""Unit tests for FP16 wire compression (Strategy 2)."""

import numpy as np
import pytest

from repro.core.compression import (
    FP16_MAX,
    FP16_RELATIVE_ERROR_BOUND,
    compress_fp16,
    decompress_fp16,
    roundtrip_error,
    wire_bytes,
)


class TestCompress:
    def test_dtype(self):
        out = compress_fp16(np.ones(4, dtype=np.float32))
        assert out.dtype == np.float16

    def test_halves_bytes(self):
        arr = np.ones(100, dtype=np.float32)
        assert compress_fp16(arr).nbytes == arr.nbytes // 2

    def test_overflow_clamped_not_inf(self):
        out = compress_fp16(np.array([1e9, -1e9], dtype=np.float32))
        assert np.all(np.isfinite(out.astype(np.float32)))
        assert out[0] == np.float16(FP16_MAX)

    def test_preserves_shape(self):
        arr = np.zeros((3, 5), dtype=np.float32)
        assert compress_fp16(arr).shape == (3, 5)


class TestDecompress:
    def test_roundtrip_dtype(self):
        back = decompress_fp16(compress_fp16(np.ones(3, dtype=np.float32)))
        assert back.dtype == np.float32

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            decompress_fp16(np.ones(3, dtype=np.float32))


class TestRoundtripError:
    def test_within_ieee_bound(self, rng):
        arr = rng.uniform(0.01, 100.0, 1000).astype(np.float32)
        assert roundtrip_error(arr) <= FP16_RELATIVE_ERROR_BOUND * 1.01

    def test_feature_scale_values(self, rng):
        """Feature entries are O(sqrt(rating/k)) ~ 0.1..2, comfortably in
        FP16's sweet spot (the paper's Strategy 2 rationale)."""
        arr = rng.uniform(0.05, 2.0, 10_000).astype(np.float32)
        assert roundtrip_error(arr) < 5e-4

    def test_zero_array(self):
        assert roundtrip_error(np.zeros(10, dtype=np.float32)) == 0.0

    def test_empty_array(self):
        assert roundtrip_error(np.array([], dtype=np.float32)) == 0.0

    def test_exact_halves(self):
        # powers of two are exactly representable
        arr = np.array([0.5, 1.0, 2.0, 4.0], dtype=np.float32)
        assert roundtrip_error(arr) == 0.0


class TestWireBytes:
    def test_fp32(self):
        assert wire_bytes(1000, fp16=False) == 4000

    def test_fp16(self):
        assert wire_bytes(1000, fp16=True) == 2000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire_bytes(-1, fp16=False)
