"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim (smaller scale)."""
        from repro import HCCMF, HCCConfig, NETFLIX, paper_workstation

        ratings = NETFLIX.scaled(5_000).generate(seed=0)
        hcc = HCCMF(
            paper_workstation(), NETFLIX,
            HCCConfig(k=8, epochs=3, learning_rate=0.01),
            ratings=ratings,
        )
        result = hcc.train()
        assert result.rmse_history[-1] > 0
        assert 0 < result.utilization < 1

    def test_subpackages_importable(self):
        for mod in (
            "repro.core", "repro.mf", "repro.data",
            "repro.hardware", "repro.parallel", "repro.experiments",
            "repro.analysis", "repro.resilience", "repro.testing",
        ):
            importlib.import_module(mod)

    def test_dataset_registry_exported(self):
        assert repro.NETFLIX.name == "Netflix"
        assert repro.MOVIELENS_20M.name == "MovieLens-20m"

    def test_experiment_registry(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert len(ALL_EXPERIMENTS) == 11
        assert all(callable(f) for f in ALL_EXPERIMENTS.values())
