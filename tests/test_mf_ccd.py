"""Unit tests for CCD++ and user fold-in."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.mf.ccd import CCDPlusPlus, fold_in_user
from repro.mf.sgd import HogwildSGD


class TestCCDPlusPlus:
    def test_converges_fast(self, small_ratings):
        c = CCDPlusPlus(k=8, reg=0.05, seed=0)
        c.fit(small_ratings, epochs=5)
        assert c.history.rmse[-1] < c.history.rmse[0]
        # closed-form coordinate solves: beats SGD at equal epochs
        h = HogwildSGD(k=8, lr=0.01, seed=0)
        h.fit(small_ratings, epochs=5)
        assert c.history.rmse[-1] < h.history.rmse[-1]

    def test_residual_matches_model(self, small_ratings):
        """The incrementally-maintained residual must agree with a fresh
        prediction at the end of training (no drift)."""
        c = CCDPlusPlus(k=6, reg=0.05, seed=1)
        c.fit(small_ratings, epochs=3)
        direct = small_ratings.vals - c.model.predict(
            small_ratings.rows, small_ratings.cols
        )
        train_rmse = float(np.sqrt(np.mean(direct.astype(np.float64) ** 2)))
        # history recorded residual-based train mse each epoch
        assert train_rmse**2 == pytest.approx(c.history.train_mse[-1], rel=1e-3)

    def test_exact_on_noiseless_rank1(self):
        rng = np.random.default_rng(0)
        u = rng.uniform(0.5, 2.0, 30)
        v = rng.uniform(0.5, 2.0, 20)
        dense = np.outer(u, v).astype(np.float32)
        flat = rng.choice(30 * 20, size=400, replace=False)
        data = RatingMatrix(30, 20, flat // 20, flat % 20, dense[flat // 20, flat % 20])
        c = CCDPlusPlus(k=2, reg=1e-6, seed=0)
        c.fit(data, epochs=10)
        assert c.history.rmse[-1] < 0.02

    def test_inner_sweeps_help_or_match(self, small_ratings):
        one = CCDPlusPlus(k=6, reg=0.05, inner_sweeps=1, seed=0)
        three = CCDPlusPlus(k=6, reg=0.05, inner_sweeps=3, seed=0)
        one.fit(small_ratings, epochs=3)
        three.fit(small_ratings, epochs=3)
        assert three.history.rmse[-1] <= one.history.rmse[-1] + 0.02

    def test_regularization_shrinks(self, small_ratings):
        weak = CCDPlusPlus(k=6, reg=1e-5, seed=0)
        strong = CCDPlusPlus(k=6, reg=5.0, seed=0)
        weak.fit(small_ratings, epochs=3)
        strong.fit(small_ratings, epochs=3)
        assert np.linalg.norm(strong.model.P) < np.linalg.norm(weak.model.P)

    def test_parameters_finite(self, small_ratings):
        c = CCDPlusPlus(k=8, seed=0)
        c.fit(small_ratings, epochs=4)
        assert np.all(np.isfinite(c.model.P))
        assert np.all(np.isfinite(c.model.Q))

    def test_validation(self):
        with pytest.raises(ValueError):
            CCDPlusPlus(k=0)
        with pytest.raises(ValueError):
            CCDPlusPlus(k=4, reg=-1)
        with pytest.raises(ValueError):
            CCDPlusPlus(k=4, inner_sweeps=0)


class TestFoldIn:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.data.datasets import NETFLIX

        data = NETFLIX.scaled(12_000).generate(seed=2)
        c = CCDPlusPlus(k=8, reg=0.05, seed=2)
        c.fit(data, epochs=5)
        return c.model, data

    def test_folded_user_predicts_own_ratings(self, trained):
        model, data = trained
        # take an existing user's ratings and fold them in as if new
        user = int(np.argmax(data.row_counts()))
        mask = data.rows == user
        items, vals = data.cols[mask], data.vals[mask]
        p_new = fold_in_user(model, items, vals, reg=0.05)
        preds = p_new @ model.Q[:, items]
        rmse = float(np.sqrt(np.mean((preds - vals) ** 2)))
        assert rmse < 1.0  # close fit to the user's own ratings

    def test_matches_trained_factor_direction(self, trained):
        model, data = trained
        user = int(np.argmax(data.row_counts()))
        mask = data.rows == user
        p_new = fold_in_user(model, data.cols[mask], data.vals[mask], reg=0.05)
        trained_p = model.P[user]
        cos = float(
            np.dot(p_new, trained_p)
            / (np.linalg.norm(p_new) * np.linalg.norm(trained_p) + 1e-12)
        )
        assert cos > 0.7

    def test_shape_and_dtype(self, trained):
        model, data = trained
        p = fold_in_user(model, data.cols[:5], data.vals[:5])
        assert p.shape == (model.k,)
        assert p.dtype == np.float32

    def test_validation(self, trained):
        model, data = trained
        with pytest.raises(ValueError):
            fold_in_user(model, np.array([]), np.array([]))
        with pytest.raises(ValueError):
            fold_in_user(model, np.array([0, 1]), np.array([1.0]))
        with pytest.raises(IndexError):
            fold_in_user(model, np.array([model.n]), np.array([1.0]))
