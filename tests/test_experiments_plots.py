"""Unit tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.plots import ascii_line_chart, convergence_chart


class TestAsciiLineChart:
    def test_basic_render(self):
        art = ascii_line_chart(
            {"down": ([1, 2, 3, 4], [4.0, 3.0, 2.0, 1.0])},
            width=30, height=8, x_label="epoch", y_label="rmse",
        )
        lines = art.splitlines()
        assert len(lines) == 8 + 2  # grid + x axis + legend
        assert "down" in art
        assert "epoch" in art
        assert "rmse" in art

    def test_axis_ranges_annotated(self):
        art = ascii_line_chart({"s": ([0, 10], [0.5, 2.5])}, width=30, height=6)
        assert "2.5" in art
        assert "0.5" in art
        assert "10" in art

    def test_multiple_series_distinct_glyphs(self):
        art = ascii_line_chart(
            {
                "a": ([1, 2, 3], [1.0, 2.0, 3.0]),
                "b": ([1, 2, 3], [3.0, 2.0, 1.0]),
            },
            width=30, height=8,
        )
        assert "*" in art and "+" in art
        assert "* a" in art and "+ b" in art

    def test_descending_curve_descends(self):
        art = ascii_line_chart(
            {"c": (list(range(10)), [10 - i for i in range(10)])},
            width=40, height=10,
        )
        rows = art.splitlines()[:10]
        first_col = min(r.find("*") for r in rows if "*" in r)
        top_row = next(i for i, r in enumerate(rows) if "*" in r)
        bottom_row = max(i for i, r in enumerate(rows) if "*" in r)
        assert top_row < bottom_row  # curve spans vertically

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({}, width=30, height=8)
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([1], [1.0, 2.0])})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([], [])})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([1], [1.0])}, width=5, height=2)

    def test_constant_series_ok(self):
        art = ascii_line_chart({"flat": ([1, 2, 3], [1.0, 1.0, 1.0])}, width=30, height=6)
        assert "flat" in art


class TestConvergenceChart:
    def _curves(self):
        return {
            "HCC": {"rmse": [1.0, 0.8, 0.7], "time": [0.1, 0.2, 0.3]},
            "FPSGD": {"rmse": [1.0, 0.9, 0.85], "time": [0.5, 1.0, 1.5]},
        }

    def test_epoch_axis(self):
        art = convergence_chart(self._curves(), against="epoch")
        assert "epoch" in art
        assert "RMSE" in art

    def test_time_axis(self):
        art = convergence_chart(self._curves(), against="time")
        assert "time" in art
        assert "1.5" in art  # the slow method's span

    def test_bad_axis(self):
        with pytest.raises(ValueError, match="against"):
            convergence_chart(self._curves(), against="bananas")

    def test_renders_fig7_output(self):
        from repro.experiments.figures import fig7

        r = fig7(max_nnz=6_000, epochs=5, k=8)
        art = convergence_chart(r.extra["curves"]["Netflix"], against="time")
        assert "HCC" in art and "cuMF_SGD" in art
