"""Unit tests for the Table 2 / Table 4 calibration layer."""

import pytest

from repro.data.datasets import MOVIELENS_20M, NETFLIX, R1_STAR, YAHOO_R1, YAHOO_R2
from repro.hardware.calibration import (
    REFERENCE_K,
    bytes_per_update,
    dataset_footprint_gb,
    dataset_rate,
    locality_factor,
    table2_bandwidth,
    table4_rate,
)


class TestBytesPerUpdate:
    def test_formula(self):
        # Eq. 2: 16k + 4 bytes per update
        assert bytes_per_update(128) == 2052
        assert bytes_per_update(1) == 20

    def test_invalid(self):
        with pytest.raises(ValueError):
            bytes_per_update(0)


class TestTable2:
    def test_known_cells(self):
        assert table2_bandwidth("6242", "IW") == pytest.approx(67.3001)
        assert table2_bandwidth("2080", "DP0") == pytest.approx(388.7935)

    def test_dp0_exceeds_iw_everywhere(self):
        for name in ("6242", "6242L", "2080", "2080S"):
            assert table2_bandwidth(name, "DP0") > table2_bandwidth(name, "IW")

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            table2_bandwidth("V100", "IW")


class TestTable4:
    def test_exact_cells(self):
        assert table4_rate("2080S", "Netflix") == pytest.approx(1_052_866_849)
        assert table4_rate("6242-24T", "R2") == pytest.approx(266_293_289)

    def test_scaled_names_resolve(self):
        assert table4_rate("2080", "Netflix@5000") == table4_rate("2080", "Netflix")

    def test_r1_star_maps_to_r1(self):
        assert table4_rate("2080", "R1*") == table4_rate("2080", "R1")

    def test_missing_cell_is_none(self):
        assert table4_rate("V100", "Netflix") is None
        assert table4_rate("2080", "NoSuchDataset") is None

    def test_r2_punishes_gpus_not_cpus(self):
        # the characteristic Table 4 shape this model must preserve
        gpu_drop = table4_rate("2080S", "R2") / table4_rate("2080S", "Netflix")
        cpu_drop = table4_rate("6242", "R2") / table4_rate("6242", "Netflix")
        assert gpu_drop < 0.45
        assert cpu_drop > 0.7

    def test_r1_punishes_cpus_more_than_gpus(self):
        gpu_drop = table4_rate("2080", "R1") / table4_rate("2080", "Netflix")
        cpu_drop = table4_rate("6242-24T", "R1") / table4_rate("6242-24T", "Netflix")
        assert cpu_drop < gpu_drop


class TestLocalityFallback:
    def test_netflix_near_unity(self):
        assert locality_factor(True, NETFLIX, memory_gb=16.0) == pytest.approx(1.0, abs=0.05)
        assert locality_factor(False, NETFLIX) == pytest.approx(1.0, abs=0.05)

    def test_r2_memory_pressure_on_small_gpus(self):
        # 8 GB GPU: R2's footprint (~5 GB) collapses throughput
        assert locality_factor(True, YAHOO_R2, memory_gb=8.0) < 0.5
        # 16 GB GPU: no collapse
        assert locality_factor(True, YAHOO_R2, memory_gb=16.0) > 0.7

    def test_low_reuse_hurts_cpu_more(self):
        cpu = locality_factor(False, YAHOO_R1)
        gpu = locality_factor(True, YAHOO_R1, memory_gb=8.0)
        assert cpu < gpu

    def test_bounded(self):
        for spec in (NETFLIX, YAHOO_R1, R1_STAR, YAHOO_R2, MOVIELENS_20M):
            for is_gpu in (True, False):
                f = locality_factor(is_gpu, spec, memory_gb=8.0)
                assert 0.2 <= f <= 1.0

    def test_footprint_formula(self):
        gb = dataset_footprint_gb(NETFLIX, k=128)
        expected = (12 * NETFLIX.nnz + 4 * 128 * (NETFLIX.m + NETFLIX.n)) / 1e9
        assert gb == pytest.approx(expected)


class TestDatasetRate:
    def test_prefers_measured(self):
        assert dataset_rate("2080", True, 1.0, NETFLIX) == table4_rate("2080", "Netflix")

    def test_falls_back_for_unknown_processor(self):
        rate = dataset_rate("V100", True, 1.28e9, NETFLIX, memory_gb=16.0)
        assert rate == pytest.approx(1.28e9, rel=0.05)

    def test_fallback_scales_with_locality(self):
        netflix = dataset_rate("V100", True, 1.28e9, NETFLIX, memory_gb=16.0)
        r1 = dataset_rate("V100", True, 1.28e9, YAHOO_R1, memory_gb=16.0)
        assert r1 < netflix

    def test_reference_k(self):
        assert REFERENCE_K == 128
