"""Shape tests for the ablation studies and the future-work extension."""

import pytest

from repro.experiments.ablations import (
    ALL_ABLATIONS,
    ablate_heterogeneous_baselines,
    ablate_lambda,
    ablate_latent_dim,
    ablate_streams,
    extension_q_rotate,
)


class TestStreamsAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablate_streams(max_streams=6)

    def test_monotone_improvement(self, result):
        epochs = result.column("epoch_ms")
        assert all(b <= a + 1e-9 for a, b in zip(epochs, epochs[1:]))

    def test_diminishing_returns(self, result):
        epochs = result.column("epoch_ms")
        first_gain = epochs[0] - epochs[1]
        late_gain = epochs[4] - epochs[5]
        assert late_gain < 0.25 * first_gain

    def test_exposed_sync_shrinks(self, result):
        sync = result.column("exposed_sync_ms")
        assert sync[-1] < sync[0] / 2


class TestLambdaAblation:
    def test_crossover_exists_on_netflix(self):
        result = ablate_lambda()
        strategies = result.column("chosen_strategy")
        assert "dp1" in strategies
        assert "dp2" in strategies
        # once DP2 is chosen, larger lambda keeps choosing it
        first_dp2 = strategies.index("dp2")
        assert all(s == "dp2" for s in strategies[first_dp2:])

    def test_paper_lambda_selects_dp1_on_netflix(self):
        result = ablate_lambda(thresholds=(10.0,))
        assert result.column("chosen_strategy") == ["dp1"]


class TestLatentDimAblation:
    def test_epoch_time_scales_linearly_with_k(self):
        result = ablate_latent_dim(dims=(16, 32, 64, 128))
        times = result.column("epoch_ms")
        # Eq. 2: both terms ~k, so doubling k ~doubles the epoch
        for a, b in zip(times, times[1:]):
            assert b / a == pytest.approx(2.0, rel=0.1)

    def test_comm_fraction_k_invariant(self):
        result = ablate_latent_dim(dims=(16, 128))
        fr = result.column("comm_fraction")
        assert fr[0] == pytest.approx(fr[1], rel=0.1)


class TestBaselineAblation:
    def test_equal_split_dsgd_much_slower(self):
        result = ablate_heterogeneous_baselines()
        rows = result.row_map()
        assert rows["DSGD (equal blocks)"][2] > 3.0  # the bucket effect

    def test_rate_aware_dsgd_comparable(self):
        result = ablate_heterogeneous_baselines()
        rows = result.row_map()
        assert rows["DSGD (rate-proportional blocks)"][2] == pytest.approx(1.0, rel=0.25)


class TestQRotateExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return extension_q_rotate()

    def test_rotation_beats_q_only_everywhere(self, result):
        by = {(r[0], r[1]): r[2] for r in result.rows}
        for n in (1, 2, 3, 4):
            assert by[(n, "Q-rotate")] < by[(n, "Q-only")]

    def test_rotation_restores_scaling(self, result):
        """The actual fix: with rotation, 4 workers are markedly faster
        than 1 on MovieLens; with Q-only they barely are (Table 6)."""
        by = {(r[0], r[1]): r[2] for r in result.rows}
        rotate_gain = by[(1, "Q-rotate")] / by[(4, "Q-rotate")]
        q_only_gain = by[(1, "Q-only")] / by[(4, "Q-only")]
        assert rotate_gain > 1.5
        assert rotate_gain > q_only_gain + 0.3

    def test_registry(self):
        assert set(ALL_ABLATIONS) == {
            "streams", "lambda", "latent-dim", "baselines", "q-rotate",
            "adaptive", "energy", "sensitivity",
        }
