"""The chaos-parity harness: same faults, both planes, same story.

Three layers of enforcement:

* cross-plane parity on a couple of named scenarios (slow: the process
  plane spawns real workers) — the full matrix is ``repro chaos-parity``;
* the whole default matrix sim-side, checking expected outcomes and
  the single-plane safety invariants;
* a seeded randomized regression sweep (~50 scenarios, sim-only,
  fast).  Every failure message carries the scenario's ``describe()``,
  which includes the reproducing seed.
"""

import numpy as np
import pytest

from repro.core.cost_model import Regime, TimeCostModel
from repro.core.partition import PartitionPlan
from repro.data.datasets import NETFLIX
from repro.hardware.topology import paper_workstation
from repro.resilience.policy import redistribute
from repro.testing import (
    ChaosScenario,
    check_invariants,
    check_parity,
    default_matrix,
    generate_scenarios,
    run_scenario,
)


def _by_name(name: str) -> ChaosScenario:
    (scenario,) = [s for s in default_matrix(0) if s.name == name]
    return scenario


class TestCrossPlaneParity:
    def test_kill_soft_parity(self):
        scenario = _by_name("kill-soft")
        sim = run_scenario(scenario, "sim")
        process = run_scenario(scenario, "process")
        report = check_parity(sim, process)
        assert report.ok, report.describe()
        # the contract actually bit on something: a redistribution
        assert any("redistribute" in str(d) for d in sim.decisions)

    def test_two_deaths_remap_parity(self):
        """Both planes renumber survivors identically: the second kill,
        aimed at an old rank, fires on the remapped worker in each."""
        scenario = _by_name("two-deaths-remap")
        sim = run_scenario(scenario, "sim")
        process = run_scenario(scenario, "process")
        report = check_parity(sim, process)
        assert report.ok, report.describe()
        assert len(sim.decisions) == 2
        assert sim.final_workers == process.final_workers == 2

    def test_abort_parity(self):
        scenario = _by_name("abort-checkpointed")
        sim = run_scenario(scenario, "sim")
        process = run_scenario(scenario, "process")
        report = check_parity(sim, process)
        assert report.ok, report.describe()
        assert sim.aborted and process.aborted
        assert sim.checkpoint_written and process.checkpoint_written


class TestDefaultMatrixSim:
    @pytest.mark.parametrize(
        "scenario", default_matrix(0), ids=lambda s: s.name
    )
    def test_sim_outcome_and_invariants(self, scenario):
        outcome = run_scenario(scenario, "sim")
        problems = check_invariants(scenario, outcome)
        assert not problems, f"{problems} ({scenario.describe()})"
        assert outcome.aborted == scenario.expect_abort, scenario.describe()
        if not scenario.expect_abort:
            assert len(outcome.rmse_history) == scenario.epochs

    def test_matrix_covers_every_fault_kind(self):
        kinds = {
            f.kind for s in default_matrix(0) for f in s.fault_plan.faults
        }
        assert kinds == {"kill", "delay", "drop", "corrupt"}

    def test_sim_runs_are_deterministic(self):
        scenario = _by_name("kill-soft")
        a = run_scenario(scenario, "sim")
        b = run_scenario(scenario, "sim")
        assert a.rmse_history == b.rmse_history
        assert a.decisions == b.decisions
        assert a.degraded_ratio == b.degraded_ratio

    def test_degraded_epochs_logged_and_priced(self):
        """After a kill the sim's cost log flips to degraded pricing."""
        scenario = _by_name("kill-soft")
        outcome = run_scenario(scenario, "sim")
        assert outcome.degraded_ratio is not None
        assert outcome.degraded_ratio > 0


class TestRandomizedSweep:
    def test_fifty_scenarios_hold_invariants(self):
        scenarios = generate_scenarios(seed=0, count=50)
        assert len(scenarios) == 50
        for scenario in scenarios:
            outcome = run_scenario(scenario, "sim")
            problems = check_invariants(scenario, outcome)
            assert not problems, (
                f"{problems} — reproduce with: {scenario.describe()}"
            )

    def test_generator_is_deterministic(self):
        assert generate_scenarios(7, 10) == generate_scenarios(7, 10)

    def test_generator_varies_with_seed(self):
        a = [s.fault_plan.describe() for s in generate_scenarios(1, 10)]
        b = [s.fault_plan.describe() for s in generate_scenarios(2, 10)]
        assert a != b

    def test_generated_faults_fit_their_scenarios(self):
        for s in generate_scenarios(3, 30):
            for f in s.fault_plan.faults:
                assert f.rank < s.n_workers
                assert f.epoch < s.epochs


class TestScenarioValidation:
    def test_fault_rank_must_fit(self):
        from repro.core.config import RecoveryPolicy
        from repro.resilience import FaultPlan

        with pytest.raises(ValueError, match="outside"):
            ChaosScenario(
                name="bad", seed=0, n_workers=2, epochs=2,
                fault_plan=FaultPlan().kill(5, epoch=1),
                recovery=RecoveryPolicy(),
            )

    def test_run_scenario_rejects_unknown_plane(self):
        with pytest.raises(ValueError, match="plane"):
            run_scenario(_by_name("kill-soft"), "quantum")


class TestDegradedCostProperties:
    """Satellite properties over the analytic failure path (Eq. 1-5)."""

    @pytest.fixture
    def model(self):
        return TimeCostModel(paper_workstation(16), NETFLIX, k=128)

    def test_kills_never_cheapen_compute_bound_epochs(self, model):
        """Monotonicity, seeded-random kill sets: in the compute-bound
        regime the degraded epoch always costs at least the healthy one.
        (Scoped to compute-bound on purpose — sync-bound epochs can get
        cheaper with fewer workers, as fewer merges shrink T_sync.)"""
        rng = np.random.default_rng(0)
        n = model.platform.n_workers
        from repro.core.config import PartitionStrategy

        fractions = model.derive_partition(PartitionStrategy.DP1).fractions
        healthy = model.epoch_cost(fractions)
        assert healthy.regime is Regime.COMPUTE_BOUND
        for trial in range(25):
            n_dead = int(rng.integers(1, n - 1))
            dead = set(map(int, rng.choice(n, size=n_dead, replace=False)))
            degraded = model.degraded_epoch_cost(fractions, dead)
            assert degraded.regime is Regime.COMPUTE_BOUND, (trial, dead)
            assert degraded.total >= healthy.total - 1e-12, (
                f"trial {trial}: killing {sorted(dead)} cheapened the "
                f"epoch {healthy.total:.6f} -> {degraded.total:.6f} "
                f"(reproduce: default_rng(0), trial {trial})"
            )

    def test_redistributed_fractions_sum_to_one(self):
        rng = np.random.default_rng(1)
        for trial in range(50):
            n = int(rng.integers(2, 9))
            raw = rng.random(n) + 0.05
            fractions = tuple(float(f) for f in raw / raw.sum())
            plan = PartitionPlan("dp1", fractions)
            n_dead = int(rng.integers(1, n))
            dead = set(map(int, rng.choice(n, size=n_dead, replace=False)))
            degraded = redistribute(plan, dead)
            assert abs(sum(degraded.fractions) - 1.0) <= 1e-9, (
                f"trial {trial}: fractions {degraded.fractions} "
                f"(reproduce: default_rng(1), trial {trial})"
            )
            assert all(f > 0 for f in degraded.fractions)
