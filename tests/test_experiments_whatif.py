"""Unit tests for the what-if platform explorer."""

import pytest

from repro.data.datasets import MOVIELENS_20M, NETFLIX
from repro.experiments.whatif import (
    BUS_GENERATIONS,
    NVLINK2,
    PCIE4_X16,
    gpu_pool,
    hypothetical_gpu,
    sweep_gpu_count,
    sweep_interconnect,
)
from repro.hardware.processor import Processor
from repro.hardware.specs import PCIE3_X16


class TestGpuPool:
    def test_composition(self):
        plat = gpu_pool("2080", 3)
        assert plat.n_workers == 3
        assert all(w.is_gpu for w in plat.workers)
        assert plat.server.is_cpu

    def test_unique_names(self):
        plat = gpu_pool("2080S", 4)
        assert len({w.name for w in plat.workers}) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_pool("2080", 0)
        with pytest.raises(KeyError):
            gpu_pool("3090", 1)
        with pytest.raises(ValueError):
            gpu_pool("6242", 1)


class TestSweepGpuCount:
    @pytest.fixture(scope="class")
    def movielens_rows(self):
        return sweep_gpu_count(MOVIELENS_20M, max_gpus=6)

    def test_saturation_on_comm_bound_data(self, movielens_rows):
        """The generalized Table 6: MovieLens gains flatten (and even
        reverse — more workers means more sync) well before 6 GPUs."""
        times = [r.total_time for r in movielens_rows]
        first_gain = times[0] - times[1]
        late_gain = times[3] - times[5]
        assert late_gain < 0.2 * first_gain

    def test_utilization_decays(self, movielens_rows):
        utils = [r.utilization for r in movielens_rows]
        assert all(b < a for a, b in zip(utils, utils[1:]))

    def test_netflix_scales_further(self):
        rows = sweep_gpu_count(NETFLIX, max_gpus=4)
        times = [r.total_time for r in rows]
        assert times[3] < 0.5 * times[0]

    def test_price_grows_linearly(self, movielens_rows):
        prices = [r.price for r in movielens_rows]
        assert prices[1] - prices[0] == pytest.approx(699.0)

    def test_power_per_dollar(self, movielens_rows):
        assert movielens_rows[0].power_per_dollar > movielens_rows[-1].power_per_dollar


class TestSweepInterconnect:
    def test_faster_bus_never_slower(self):
        rows = {r.label: r for r in sweep_interconnect(MOVIELENS_20M)}
        t3 = rows["2x 2080S over pcie3"].total_time
        t4 = rows["2x 2080S over pcie4"].total_time
        tn = rows["2x 2080S over nvlink"].total_time
        assert tn < t4 < t3

    def test_bus_catalog(self):
        assert PCIE4_X16.bandwidth_gbs == pytest.approx(2 * PCIE3_X16.bandwidth_gbs)
        assert NVLINK2.bandwidth_gbs > PCIE4_X16.bandwidth_gbs
        assert set(BUS_GENERATIONS) == {"pcie3", "pcie4", "nvlink"}


class TestHypotheticalGpu:
    def test_scales_rate_and_bandwidth(self):
        h = hypothetical_gpu("fast", base="2080S", rate_multiplier=2.0)
        from repro.hardware.specs import RTX_2080S

        assert h.base_rate_k128 == pytest.approx(2 * RTX_2080S.base_rate_k128)
        assert h.dram_bandwidth() == pytest.approx(2 * RTX_2080S.dram_bandwidth())

    def test_memory_and_price_overrides(self):
        h = hypothetical_gpu("big", memory_gb=24.0, price_usd=1500.0)
        assert h.memory_gb == 24.0
        assert h.price_usd == 1500.0

    def test_usable_in_processor(self):
        h = hypothetical_gpu("fast", rate_multiplier=1.5)
        p = Processor(h)
        assert p.update_rate(128, NETFLIX) > 0

    def test_larger_memory_avoids_r2_collapse(self):
        """A 24 GB hypothetical avoids the R2 device-memory penalty the
        8 GB cards suffer (the Table 4 mechanism, testable via what-if)."""
        from repro.data.datasets import YAHOO_R2

        small_mem = hypothetical_gpu("small", base="2080S", rate_multiplier=1.0)
        big_mem = hypothetical_gpu("big", base="2080S", rate_multiplier=1.0,
                                   memory_gb=24.0)
        # same silicon, different memory: compare via the fallback path
        # (hypothetical names are not in the Table 4 calibration)
        r_small = Processor(small_mem).update_rate(128, YAHOO_R2)
        r_big = Processor(big_mem).update_rate(128, YAHOO_R2)
        assert r_big > 1.5 * r_small

    def test_validation(self):
        with pytest.raises(ValueError):
            hypothetical_gpu("x", rate_multiplier=0.0)
