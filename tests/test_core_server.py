"""Unit tests for the parameter server's sync semantics."""

import numpy as np
import pytest

from repro.core.server import ParameterServer
from repro.mf.model import MFModel


@pytest.fixture
def server():
    model = MFModel.init(6, 8, 4, seed=0)
    return ParameterServer(model, n_workers=2)


class TestLifecycle:
    def test_pull_requires_epoch(self, server):
        with pytest.raises(RuntimeError, match="begin_epoch"):
            server.pull()

    def test_push_requires_epoch(self, server):
        with pytest.raises(RuntimeError, match="begin_epoch"):
            server.push_and_sync(0, server.model.Q.copy(), 0.5)

    def test_begin_epoch_publishes_snapshot(self, server):
        server.begin_epoch()
        np.testing.assert_array_equal(server.pull(), server.model.Q)
        np.testing.assert_array_equal(server.q_base, server.model.Q)

    def test_epoch_counter(self, server):
        server.begin_epoch()
        server.begin_epoch()
        assert server.epochs_started == 2


class TestSync:
    def test_weighted_delta_merge(self, server):
        server.begin_epoch()
        base = server.model.Q.copy()
        delta = np.ones_like(base)
        server.push_and_sync(0, base + delta, weight=0.25)
        np.testing.assert_allclose(server.model.Q, base + 0.25, rtol=1e-6)

    def test_two_workers_merge_additively(self, server):
        server.begin_epoch()
        base = server.model.Q.copy()
        server.push_and_sync(0, base + 1.0, weight=0.5)
        server.push_and_sync(1, base + 3.0, weight=0.5)
        # deltas are both measured against the epoch base
        np.testing.assert_allclose(server.model.Q, base + 0.5 + 1.5, rtol=1e-5)

    def test_unchanged_push_is_noop(self, server):
        server.begin_epoch()
        base = server.model.Q.copy()
        server.push_and_sync(0, base.copy(), weight=1.0)
        np.testing.assert_allclose(server.model.Q, base, atol=1e-6)

    def test_sync_count(self, server):
        server.begin_epoch()
        base = server.model.Q.copy()
        server.push_and_sync(0, base, 0.5)
        server.push_and_sync(1, base, 0.5)
        assert server.sync_count == 2

    def test_weight_bounds(self, server):
        server.begin_epoch()
        with pytest.raises(ValueError):
            server.push_and_sync(0, server.model.Q.copy(), 1.5)

    def test_worker_id_bounds(self, server):
        server.begin_epoch()
        with pytest.raises(IndexError):
            server.push_and_sync(5, server.model.Q.copy(), 0.5)

    def test_fp16_wire_roundtrip(self):
        model = MFModel.init(4, 4, 2, seed=1)
        server = ParameterServer(model, n_workers=1, fp16_wire=True)
        server.begin_epoch()
        pulled = server.pull()
        # FP16 wire: small relative error against the true Q
        np.testing.assert_allclose(pulled, model.Q, rtol=1e-3)
        server.push_and_sync(0, pulled + 0.5, weight=1.0)
        np.testing.assert_allclose(model.Q, pulled + 0.5, rtol=2e-3, atol=2e-3)

    def test_needs_workers(self):
        with pytest.raises(ValueError):
            ParameterServer(MFModel.init(2, 2, 2), n_workers=0)

    def test_q_base_guard(self, server):
        with pytest.raises(RuntimeError):
            server.q_base
