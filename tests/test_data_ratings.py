"""Unit tests for the RatingMatrix container."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.data.ratings import RatingMatrix


class TestConstruction:
    def test_basic(self):
        r = RatingMatrix(3, 4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        assert r.shape == (3, 4)
        assert r.nnz == 3

    def test_dtypes_normalized(self):
        r = RatingMatrix(3, 4, [0, 1], [1, 2], [1, 2])
        assert r.rows.dtype == np.int64
        assert r.cols.dtype == np.int64
        assert r.vals.dtype == np.float32

    def test_empty_entries_allowed(self):
        r = RatingMatrix(3, 4, [], [], [])
        assert r.nnz == 0
        assert r.mean_rating() == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            RatingMatrix(3, 4, [0, 1], [1], [1.0, 2.0])

    def test_row_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            RatingMatrix(3, 4, [3], [0], [1.0])

    def test_col_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="column index"):
            RatingMatrix(3, 4, [0], [4], [1.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            RatingMatrix(3, 4, [-1], [0], [1.0])

    def test_nan_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RatingMatrix(3, 4, [0], [0], [float("nan")])

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RatingMatrix(0, 4, [], [], [])

    def test_2d_index_array_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            RatingMatrix(3, 4, [[0], [1]], [1, 2], [1.0, 2.0])


class TestProperties:
    def test_density(self, tiny_ratings):
        assert tiny_ratings.density == pytest.approx(15 / 30)

    def test_dims_and_reuse(self, tiny_ratings):
        assert tiny_ratings.dims == 11
        assert tiny_ratings.reuse_ratio == pytest.approx(15 / 11)

    def test_row_counts(self, tiny_ratings):
        counts = tiny_ratings.row_counts()
        assert counts.sum() == tiny_ratings.nnz
        assert len(counts) == tiny_ratings.m
        assert counts[0] == 3  # row 0 has entries at cols 0, 2, 4

    def test_col_counts(self, tiny_ratings):
        counts = tiny_ratings.col_counts()
        assert counts.sum() == tiny_ratings.nnz
        assert counts[0] == 4  # col 0: rows 0, 1, 3, 4

    def test_mean_rating(self, tiny_ratings):
        assert tiny_ratings.mean_rating() == pytest.approx(
            float(tiny_ratings.vals.mean())
        )

    def test_nbytes_counts_all_arrays(self, tiny_ratings):
        expected = 15 * (8 + 8 + 4)
        assert tiny_ratings.nbytes() == expected


class TestConverters:
    def test_dense_roundtrip(self, tiny_ratings):
        dense = tiny_ratings.to_dense()
        back = RatingMatrix.from_dense(dense)
        assert back.nnz == tiny_ratings.nnz
        np.testing.assert_array_equal(back.to_dense(), dense)

    def test_scipy_roundtrip(self, tiny_ratings):
        coo = tiny_ratings.to_scipy_coo()
        back = RatingMatrix.from_scipy(coo)
        np.testing.assert_array_equal(back.to_dense(), tiny_ratings.to_dense())

    def test_csr_matches_dense(self, tiny_ratings):
        csr = tiny_ratings.to_scipy_csr()
        assert isinstance(csr, sp.csr_matrix)
        np.testing.assert_allclose(csr.toarray(), tiny_ratings.to_dense())

    def test_from_dense_2d_required(self):
        with pytest.raises(ValueError, match="2-D"):
            RatingMatrix.from_dense(np.ones(3))

    def test_transpose_swaps(self, tiny_ratings):
        t = tiny_ratings.transpose()
        assert t.shape == (tiny_ratings.n, tiny_ratings.m)
        np.testing.assert_array_equal(t.to_dense(), tiny_ratings.to_dense().T)


class TestTransforms:
    def test_shuffle_preserves_multiset(self, tiny_ratings):
        s = tiny_ratings.shuffle(seed=1)
        assert s.nnz == tiny_ratings.nnz
        np.testing.assert_array_equal(s.to_dense(), tiny_ratings.to_dense())

    def test_shuffle_changes_order(self, small_ratings):
        s = small_ratings.shuffle(seed=1)
        assert not np.array_equal(s.rows, small_ratings.rows)

    def test_shuffle_deterministic(self, small_ratings):
        a = small_ratings.shuffle(seed=9)
        b = small_ratings.shuffle(seed=9)
        np.testing.assert_array_equal(a.rows, b.rows)
        np.testing.assert_array_equal(a.vals, b.vals)

    def test_sort_by_row(self, small_ratings):
        s = small_ratings.shuffle(0).sort_by_row()
        keys = s.rows * s.n + s.cols
        assert np.all(np.diff(keys) >= 0)

    def test_sort_by_col(self, small_ratings):
        s = small_ratings.shuffle(0).sort_by_col()
        keys = s.cols * s.m + s.rows
        assert np.all(np.diff(keys) >= 0)

    def test_select_rows(self, tiny_ratings):
        sub = tiny_ratings.select_rows(1, 4)
        assert sub.m == tiny_ratings.m  # indices preserved, not re-based
        assert np.all((sub.rows >= 1) & (sub.rows < 4))
        assert sub.nnz == 8

    def test_select_rows_empty_range(self, tiny_ratings):
        sub = tiny_ratings.select_rows(2, 2)
        assert sub.nnz == 0

    def test_select_rows_bad_range(self, tiny_ratings):
        with pytest.raises(ValueError, match="invalid row range"):
            tiny_ratings.select_rows(4, 2)

    def test_take_subset(self, tiny_ratings):
        sub = tiny_ratings.take(np.array([0, 2, 4]))
        assert sub.nnz == 3
        assert sub.shape == tiny_ratings.shape

    def test_split_partitions_entries(self, small_ratings):
        train, test = small_ratings.split(test_fraction=0.2, seed=0)
        assert train.nnz + test.nnz == small_ratings.nnz
        assert test.nnz == pytest.approx(0.2 * small_ratings.nnz, rel=0.05)

    def test_split_disjoint(self, tiny_ratings):
        train, test = tiny_ratings.split(test_fraction=0.25, seed=1)
        train_keys = set(zip(train.rows.tolist(), train.cols.tolist()))
        test_keys = set(zip(test.rows.tolist(), test.cols.tolist()))
        assert not train_keys & test_keys

    def test_split_invalid_fraction(self, tiny_ratings):
        with pytest.raises(ValueError):
            tiny_ratings.split(test_fraction=1.0)

    def test_batches_cover_everything(self, tiny_ratings):
        seen = 0
        for rows, cols, vals in tiny_ratings.batches(5):
            assert len(rows) == len(cols) == len(vals)
            assert len(rows) <= 5
            seen += len(rows)
        assert seen == tiny_ratings.nnz

    def test_batches_bad_size(self, tiny_ratings):
        with pytest.raises(ValueError):
            list(tiny_ratings.batches(0))
