"""Unit tests for computing-power metrics (Eq. 8)."""

import pytest

from repro.core.metrics import (
    computing_power,
    ideal_computing_power,
    speedup,
    utilization,
)
from repro.data.datasets import NETFLIX, YAHOO_R2
from repro.hardware.topology import paper_workstation


class TestComputingPower:
    def test_eq8(self):
        assert computing_power(1000, 20, 2.0) == pytest.approx(10_000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            computing_power(0, 20, 1.0)
        with pytest.raises(ValueError):
            computing_power(10, 0, 1.0)
        with pytest.raises(ValueError):
            computing_power(10, 20, 0.0)


class TestIdealPower:
    def test_netflix_matches_table4_ideal(self):
        """Table 4's "Ideal" column for Netflix: 2,592,493,089 updates/s."""
        plat = paper_workstation(16)
        ideal = ideal_computing_power(plat, NETFLIX, k=128)
        assert ideal == pytest.approx(2_592_493_089, rel=0.005)

    def test_r2_matches_table4_ideal(self):
        plat = paper_workstation(16)
        ideal = ideal_computing_power(plat, YAHOO_R2, k=128)
        assert ideal == pytest.approx(1_172_502_951, rel=0.005)

    def test_time_shared_worker_counted_at_full_duty(self):
        plat = paper_workstation(16, special_worker_share=0.5)
        plat_full = paper_workstation(16, special_worker_share=0.99)
        a = ideal_computing_power(plat, NETFLIX)
        b = ideal_computing_power(plat_full, NETFLIX)
        assert a == pytest.approx(b, rel=1e-6)


class TestUtilizationAndSpeedup:
    def test_utilization(self):
        assert utilization(50.0, 100.0) == pytest.approx(0.5)

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            utilization(1.0, 0.0)
        with pytest.raises(ValueError):
            utilization(-1.0, 10.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
