"""Store tier: hot-swap semantics and every read-path failure mode.

The contract under test (docs/serving.md): a successful swap bumps the
version by one and publishes an immutable snapshot; a failed swap —
missing path, truncated/corrupt payload, format-version mismatch,
metadata/factors disagreement — keeps the *most recent good* snapshot
serving, classifies the failure on the ``serving_swap_failed`` counter,
and never raises from ``swap()``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    Checkpoint,
    CheckpointVersionError,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.mf.model import MFModel
from repro.serving.store import ModelStore, ServingError


def write_ckpt(path, m=4, n=5, k=3, fill=None, epoch=1, seed=0):
    if fill is None:
        rng = np.random.default_rng(seed)
        model = MFModel(
            rng.normal(size=(m, k)).astype(np.float32),
            rng.normal(size=(k, n)).astype(np.float32),
        )
    else:
        model = MFModel(
            np.full((m, k), fill, dtype=np.float32),
            np.full((k, n), fill, dtype=np.float32),
        )
    save_checkpoint(Checkpoint(model=model, epoch=epoch), path)
    return path


def failure_counts(store):
    """reason -> count from the serving_swap_failed series."""
    if "serving_swap_failed" not in store.registry:
        return {}
    return {
        s.labels_dict()["reason"]: s.value
        for s in store.registry.get("serving_swap_failed").samples()
    }


class TestLoadAndSwap:
    def test_load_publishes_version_one(self, tmp_path):
        store = ModelStore(str(write_ckpt(tmp_path / "ck")))
        snap = store.snapshot()
        assert snap.version == 1
        assert store.version == 1
        assert (snap.m, snap.n, snap.k) == (4, 5, 3)
        assert snap.epoch == 1

    def test_successful_swap_bumps_version_and_factors(self, tmp_path):
        store = ModelStore(str(write_ckpt(tmp_path / "a", fill=1.0)))
        result = store.swap(str(write_ckpt(tmp_path / "b", fill=2.0)))
        assert result.ok and result.reason is None
        snap = store.snapshot()
        assert snap.version == result.version == 2
        assert snap.P[0, 0] == 2.0

    def test_snapshot_factors_are_frozen(self, tmp_path):
        snap = ModelStore(str(write_ckpt(tmp_path / "ck"))).snapshot()
        with pytest.raises(ValueError):
            snap.P[0, 0] = 99.0
        with pytest.raises(ValueError):
            snap.Q[0, 0] = 99.0
        Pq, Qq = snap.quantized()
        with pytest.raises(ValueError):
            Pq[0, 0] = 99.0

    def test_unloaded_store(self):
        store = ModelStore()
        assert store.version == 0
        with pytest.raises(ServingError, match="no model loaded"):
            store.snapshot()

    def test_load_raises_on_failure(self, tmp_path):
        with pytest.raises(ServingError, match="missing"):
            ModelStore(str(tmp_path / "nope"))


class TestFailureModes:
    @pytest.fixture
    def serving(self, tmp_path):
        store = ModelStore(str(write_ckpt(tmp_path / "good", fill=7.0)))
        return store, tmp_path

    def assert_degraded(self, store, result, reason, version=1, fill=7.0):
        assert not result.ok
        assert result.reason == reason
        assert result.error
        assert result.version == version
        snap = store.snapshot()   # last good keeps serving
        assert snap.version == version
        assert snap.P[0, 0] == fill
        assert failure_counts(store) == {reason: 1.0}

    def test_missing_path(self, serving):
        store, tmp_path = serving
        result = store.swap(str(tmp_path / "does-not-exist"))
        self.assert_degraded(store, result, "missing")

    def test_missing_sidecar_is_incomplete(self, serving):
        store, tmp_path = serving
        write_ckpt(tmp_path / "half")
        (tmp_path / "half.json").unlink()
        result = store.swap(str(tmp_path / "half"))
        self.assert_degraded(store, result, "missing")

    def test_truncated_npz(self, serving):
        store, tmp_path = serving
        write_ckpt(tmp_path / "torn")
        npz = tmp_path / "torn.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        result = store.swap(str(tmp_path / "torn"))
        self.assert_degraded(store, result, "corrupt")

    def test_corrupt_sidecar_json(self, serving):
        store, tmp_path = serving
        write_ckpt(tmp_path / "bad")
        (tmp_path / "bad.json").write_text("{not json")
        result = store.swap(str(tmp_path / "bad"))
        self.assert_degraded(store, result, "corrupt")

    def test_version_mismatch(self, serving):
        store, tmp_path = serving
        write_ckpt(tmp_path / "old")
        meta = json.loads((tmp_path / "old.json").read_text())
        meta["version"] = 99
        (tmp_path / "old.json").write_text(json.dumps(meta))
        result = store.swap(str(tmp_path / "old"))
        self.assert_degraded(store, result, "version-mismatch")

    def test_shape_mismatch_is_corrupt(self, serving):
        store, tmp_path = serving
        write_ckpt(tmp_path / "skew")
        meta = json.loads((tmp_path / "skew.json").read_text())
        meta["shape"]["m"] = 1234
        (tmp_path / "skew.json").write_text(json.dumps(meta))
        result = store.swap(str(tmp_path / "skew"))
        self.assert_degraded(store, result, "corrupt")

    def test_last_good_is_most_recent_success(self, serving):
        store, tmp_path = serving
        assert store.swap(str(write_ckpt(tmp_path / "v2", fill=9.0))).ok
        result = store.swap(str(tmp_path / "gone"))
        self.assert_degraded(store, result, "missing", version=2, fill=9.0)

    def test_failures_accumulate_by_reason(self, serving):
        store, tmp_path = serving
        store.swap(str(tmp_path / "gone"))
        store.swap(str(tmp_path / "gone"))
        write_ckpt(tmp_path / "bad")
        (tmp_path / "bad.json").write_text("?")
        store.swap(str(tmp_path / "bad"))
        assert failure_counts(store) == {"missing": 2.0, "corrupt": 1.0}
        assert store.swap_failures() == 3.0
        # failures never consume version numbers
        assert store.swap(str(write_ckpt(tmp_path / "v2"))).version == 2

    def test_swap_events_are_recorded(self, serving):
        store, tmp_path = serving
        store.swap(str(tmp_path / "gone"))
        events = [
            e for e in store.registry.events if e["event"] == "serving_swap"
        ]
        assert events[0]["ok"] is True       # the initial load
        assert events[-1]["ok"] is False
        assert events[-1]["reason"] == "missing"

    def test_no_failures_reads_zero(self, serving):
        store, _ = serving
        assert store.swap_failures() == 0.0


class TestCheckpointMeta:
    def test_meta_peek(self, tmp_path):
        write_ckpt(tmp_path / "ck", m=6, n=7, k=2, epoch=3)
        meta = read_checkpoint_meta(tmp_path / "ck")
        assert meta["epoch"] == 3
        assert meta["shape"] == {"m": 6, "n": 7, "k": 2}

    def test_meta_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint_meta(tmp_path / "nope")

    def test_meta_version_error_carries_found_version(self, tmp_path):
        write_ckpt(tmp_path / "ck")
        meta = json.loads((tmp_path / "ck.json").read_text())
        meta["version"] = 42
        (tmp_path / "ck.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointVersionError) as exc_info:
            read_checkpoint_meta(tmp_path / "ck")
        assert exc_info.value.found == 42
        assert isinstance(exc_info.value, ValueError)  # back-compat
