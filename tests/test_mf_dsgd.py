"""Unit tests for the DSGD baseline."""

import numpy as np
import pytest

from repro.mf.dsgd import DSGD, dsgd_epoch_time, stratum_schedule


class TestStratumSchedule:
    def test_covers_grid_exactly_once(self):
        p = 4
        seen = set()
        for stratum in stratum_schedule(p):
            for block in stratum:
                assert block not in seen
                seen.add(block)
        assert len(seen) == p * p

    def test_strata_are_conflict_free(self):
        """Within a stratum, no two blocks share a row or column band."""
        for stratum in stratum_schedule(5):
            rows = [i for i, _ in stratum]
            cols = [j for _, j in stratum]
            assert len(set(rows)) == len(rows)
            assert len(set(cols)) == len(cols)

    def test_one_block_per_worker_per_stratum(self):
        for stratum in stratum_schedule(3):
            assert [i for i, _ in stratum] == [0, 1, 2]

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            stratum_schedule(0)


class TestDSGDTraining:
    def test_converges(self, small_ratings):
        d = DSGD(k=8, workers=3, lr=0.01, reg=0.01, seed=0)
        d.fit(small_ratings, epochs=5)
        assert d.history.rmse[-1] < d.history.rmse[0]

    def test_strata_counted(self, small_ratings):
        d = DSGD(k=4, workers=3, seed=0)
        d.fit(small_ratings, epochs=2)
        assert d.strata_run == 2 * 3  # p strata per epoch

    def test_deterministic(self, small_ratings):
        a = DSGD(k=4, workers=2, lr=0.01, seed=5)
        b = DSGD(k=4, workers=2, lr=0.01, seed=5)
        a.fit(small_ratings, epochs=3)
        b.fit(small_ratings, epochs=3)
        assert a.history.rmse == b.history.rmse

    def test_validation(self):
        with pytest.raises(ValueError):
            DSGD(k=0)
        with pytest.raises(ValueError):
            DSGD(k=4, workers=0)


class TestDSGDEpochTime:
    def test_homogeneous_is_perfect(self):
        p = 3
        block_nnz = np.full((p, p), 100.0)
        t = dsgd_epoch_time(block_nnz, [10.0] * p)
        # p strata x (100 updates / 10 per s) each
        assert t == pytest.approx(p * 10.0)

    def test_bucket_effect(self):
        """Equal blocks on heterogeneous workers run at the slowest pace."""
        p = 2
        block_nnz = np.full((p, p), 100.0)
        slow_fast = dsgd_epoch_time(block_nnz, [1.0, 100.0])
        balanced = dsgd_epoch_time(block_nnz, [50.5, 50.5])
        # same aggregate capacity, but heterogeneity wrecks the barrier time
        assert slow_fast > 10 * balanced

    def test_barrier_cost_added_per_stratum(self):
        p = 4
        block_nnz = np.full((p, p), 10.0)
        base = dsgd_epoch_time(block_nnz, [10.0] * p)
        with_barrier = dsgd_epoch_time(block_nnz, [10.0] * p, barrier_cost=0.5)
        assert with_barrier == pytest.approx(base + p * 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            dsgd_epoch_time(np.ones((2, 3)), [1.0, 1.0])
        with pytest.raises(ValueError):
            dsgd_epoch_time(np.ones((2, 2)), [1.0, 0.0])
        with pytest.raises(ValueError):
            dsgd_epoch_time(np.ones((2, 2)), [1.0, 1.0], barrier_cost=-1)
