"""Unit tests for the shared experiment runners and energy helpers."""

import pytest

from repro.core.config import HCCConfig
from repro.data.datasets import MOVIELENS_20M, NETFLIX, R1_STAR, YAHOO_R1, YAHOO_R2
from repro.experiments.platforms import overall_platform
from repro.experiments.runners import dataset_config, run_hcc, single_processor_time


class TestDatasetConfig:
    def test_r1_family_gets_full_stack(self):
        for spec in (YAHOO_R1, R1_STAR, YAHOO_R1.scaled(5000)):
            cfg = dataset_config(spec)
            assert cfg.comm.streams == 4
            assert cfg.comm.fp16

    def test_others_plain(self):
        for spec in (NETFLIX, YAHOO_R2, MOVIELENS_20M):
            cfg = dataset_config(spec)
            assert cfg.comm.streams == 1
            assert not cfg.comm.fp16

    def test_k_epochs_passthrough(self):
        cfg = dataset_config(NETFLIX, k=64, epochs=5)
        assert cfg.k == 64
        assert cfg.epochs == 5


class TestSingleProcessorTime:
    def test_matches_table4_rate(self):
        t = single_processor_time("2080S", NETFLIX, epochs=20, k=128)
        assert t == pytest.approx(NETFLIX.nnz * 20 / 1_052_866_849, rel=1e-6)

    def test_thread_override(self):
        t24 = single_processor_time("6242", NETFLIX, epochs=1, threads=24)
        t16 = single_processor_time("6242", NETFLIX, epochs=1, threads=16)
        assert t24 < t16

    def test_k_scaling(self):
        t128 = single_processor_time("2080", NETFLIX, epochs=1, k=128)
        t32 = single_processor_time("2080", NETFLIX, epochs=1, k=32)
        assert t128 / t32 == pytest.approx((16 * 128 + 4) / (16 * 32 + 4), rel=1e-6)


class TestRunHcc:
    def test_default_config(self):
        res = run_hcc(overall_platform(), NETFLIX, epochs=5)
        assert res.epochs == 5
        assert res.total_time > 0

    def test_explicit_config_respected(self):
        cfg = HCCConfig(k=32, epochs=7)
        res = run_hcc(overall_platform(), NETFLIX, cfg)
        assert res.epochs == 7

    def test_epochs_override_wins(self):
        cfg = HCCConfig(k=32, epochs=7)
        res = run_hcc(overall_platform(), NETFLIX, cfg, epochs=3)
        assert res.epochs == 3
