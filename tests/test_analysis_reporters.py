"""Tests for the reporter layer (text/JSON/SARIF) and suppression comments."""

import json
import textwrap

import pytest

from repro.analysis.lint import (
    LintIssue,
    Severity,
    all_rules,
    flow_rules,
    lint_source,
)
from repro.analysis.race import RaceCheckResult, RaceReport, RaceViolation
from repro.analysis.reporters import (
    render_json,
    render_race_sarif,
    render_rules,
    render_sarif,
    render_text,
    summary_line,
)


def make_issue(
    rule="mutable-default",
    rule_id="HCC105",
    severity=Severity.WARNING,
    path="src/repro/x.py",
    line=10,
    col=4,
    message="mutable default argument",
):
    return LintIssue(
        rule=rule,
        rule_id=rule_id,
        severity=severity,
        path=path,
        line=line,
        col=col,
        message=message,
    )


# ---------------------------------------------------------------------------
# text and JSON renderers
# ---------------------------------------------------------------------------
class TestTextAndJson:
    def test_text_line_format(self):
        text = render_text([make_issue()])
        assert (
            "src/repro/x.py:10:4: warning HCC105 (mutable-default): "
            "mutable default argument" in text
        )

    def test_summary_line_clean(self):
        assert summary_line([]) == "hcclint: clean (0 issues)"

    def test_summary_line_counts_by_severity(self):
        issues = [
            make_issue(severity=Severity.ERROR),
            make_issue(severity=Severity.WARNING),
            make_issue(severity=Severity.WARNING),
        ]
        line = summary_line(issues)
        assert "3 issues" in line
        assert "1 error" in line and "2 warnings" in line

    def test_json_payload_shape(self):
        payload = json.loads(render_json([make_issue(severity=Severity.ERROR)]))
        assert payload["summary"] == {
            "total": 1,
            "errors": 1,
            "warnings": 0,
            "infos": 0,
        }
        (issue,) = payload["issues"]
        assert issue["rule_id"] == "HCC105"
        assert issue["severity"] == "error"
        assert issue["line"] == 10

    def test_rules_catalogue_lists_flow_rules(self):
        catalogue = render_rules(all_rules() + flow_rules())
        assert "HCC201 flow-resource-leak" in catalogue
        assert "HCC204 flow-stage-protocol" in catalogue
        for rule in flow_rules():
            assert rule.rationale.split()[0] in catalogue


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------
#: Subset of the SARIF 2.1.0 schema covering everything we emit; the
#: full OASIS schema is ~500 KB, so the structural core is inlined.
SARIF_MINI_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"}
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def validate_sarif(document: dict) -> None:
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(document, SARIF_MINI_SCHEMA)


class TestSarif:
    def test_lint_sarif_validates_against_schema(self):
        issues = [
            make_issue(severity=Severity.ERROR),
            make_issue(rule_id="HCC201", rule="flow-resource-leak", line=3),
        ]
        document = json.loads(render_sarif(issues, rules=all_rules() + flow_rules()))
        validate_sarif(document)

    def test_lint_sarif_result_contents(self):
        issue = make_issue(severity=Severity.ERROR)
        document = json.loads(render_sarif([issue], rules=all_rules()))
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "hcclint"
        (result,) = run["results"]
        assert result["ruleId"] == "HCC105"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"]["startLine"] == 10
        assert location["region"]["startColumn"] == 5  # 1-based
        # ruleIndex must point at the matching rule metadata entry
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "HCC105"

    def test_empty_run_still_validates(self):
        document = json.loads(render_sarif([], rules=all_rules()))
        validate_sarif(document)
        assert document["runs"][0]["results"] == []

    def test_race_sarif_validates_and_carries_violations(self):
        result = RaceCheckResult(
            reports=[
                RaceReport(
                    label="dp0",
                    n_workers=2,
                    epochs=1,
                    violations=[
                        RaceViolation(
                            kind="p-row-overlap",
                            message="workers 0 and 1 both updated P row 7",
                        )
                    ],
                    n_events=100,
                )
            ],
            static_violations={
                "dp0": [
                    RaceViolation(kind="row-overlap", message="plan rows overlap")
                ]
            },
        )
        document = json.loads(render_race_sarif(result))
        validate_sarif(document)
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-race-check"
        texts = [r["message"]["text"] for r in run["results"]]
        assert any("P row 7" in t for t in texts)
        assert any("plan rows overlap" in t for t in texts)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"race/p-row-overlap", "race/row-overlap"}

    def test_clean_race_sarif_is_empty(self):
        result = RaceCheckResult(reports=[], static_violations={})
        document = json.loads(render_race_sarif(result))
        validate_sarif(document)
        assert document["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------
def issues_for(source: str):
    return lint_source(textwrap.dedent(source), "scratch.py")


class TestSuppressionComments:
    SOURCE = """
        def f(x={}):
            return x
    """

    def test_unsuppressed_fires(self):
        assert any(i.rule == "mutable-default" for i in issues_for(self.SOURCE))

    def test_trailing_comment_suppresses_own_line(self):
        src = """
            def f(x={}):  # hcclint: disable=mutable-default
                return x
        """
        assert issues_for(src) == []

    def test_comment_line_suppresses_next_line(self):
        src = """
            # hcclint: disable=mutable-default
            def f(x={}):
                return x
        """
        assert issues_for(src) == []

    def test_rule_id_works_like_slug(self):
        src = """
            def f(x={}):  # hcclint: disable=HCC105
                return x
        """
        assert issues_for(src) == []

    def test_disable_all(self):
        src = """
            def f(x={}):  # hcclint: disable=all
                return x
        """
        assert issues_for(src) == []

    def test_disable_file(self):
        src = """
            # hcclint: disable-file=mutable-default
            def f(x={}):
                return x

            def g(y=[]):
                return y
        """
        assert issues_for(src) == []

    def test_unrelated_rule_does_not_suppress(self):
        src = """
            def f(x={}):  # hcclint: disable=hot-copy
                return x
        """
        assert any(i.rule == "mutable-default" for i in issues_for(src))

    def test_suppression_only_hits_its_line(self):
        src = """
            def f(x={}):  # hcclint: disable=mutable-default
                return x

            def g(y=[]):
                return y
        """
        issues = issues_for(src)
        assert len(issues) == 1
        assert issues[0].line == 5
