"""Unit tests for the Strategy-3 multi-stream pipeline model."""

import pytest

from repro.hardware.streams import (
    PipelineResult,
    pipeline_schedule,
    theoretical_exposed_comm,
)
from repro.hardware.timeline import Phase


class TestDegenerate:
    def test_single_stream_is_serial(self):
        res = pipeline_schedule(1.0, 3.0, 0.5, streams=1)
        assert res.epoch_time == pytest.approx(4.5)
        assert res.exposed_comm == pytest.approx(1.5)
        assert res.hidden_fraction == pytest.approx(0.0)

    def test_zero_comm(self):
        res = pipeline_schedule(0.0, 2.0, 0.0, streams=4)
        assert res.epoch_time == pytest.approx(2.0)
        assert res.exposed_comm == 0.0

    def test_zero_compute(self):
        res = pipeline_schedule(1.0, 0.0, 1.0, streams=2, copy_engines=2)
        # copy-in and copy-out overlap except for the first/last chunk deps
        assert res.epoch_time <= 2.0 + 1e-9
        assert res.epoch_time >= 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pipeline_schedule(1, 1, 1, streams=0)
        with pytest.raises(ValueError):
            pipeline_schedule(1, 1, 1, streams=2, copy_engines=3)
        with pytest.raises(ValueError):
            pipeline_schedule(-1, 1, 1, streams=2)


class TestOverlap:
    def test_compute_bound_hides_most_comm(self):
        """When compute >> comm, exposed comm approaches 1/streams of total
        (the paper's Figure 6 claim)."""
        pull, comp, push, s = 0.4, 10.0, 0.4, 4
        res = pipeline_schedule(pull, comp, push, streams=s)
        assert res.exposed_comm == pytest.approx(
            theoretical_exposed_comm(pull, push, s), rel=0.01
        )

    def test_more_streams_never_slower(self):
        times = [
            pipeline_schedule(1.0, 5.0, 1.0, streams=s).epoch_time
            for s in (1, 2, 4, 8)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_epoch_time_lower_bound(self):
        # can never beat max(compute, pull, push)
        res = pipeline_schedule(2.0, 1.0, 0.5, streams=8)
        assert res.epoch_time >= 2.0 - 1e-9

    def test_single_copy_engine_serializes(self):
        dual = pipeline_schedule(1.0, 1.0, 1.0, streams=4, copy_engines=2)
        single = pipeline_schedule(1.0, 1.0, 1.0, streams=4, copy_engines=1)
        assert single.epoch_time >= dual.epoch_time

    def test_hidden_fraction_monotone_in_streams(self):
        fr = [
            pipeline_schedule(1.0, 6.0, 1.0, streams=s).hidden_fraction
            for s in (1, 2, 4)
        ]
        assert fr[0] < fr[1] < fr[2]


class TestSpans:
    def test_span_counts(self):
        res = pipeline_schedule(1.0, 2.0, 1.0, streams=3, worker="gpu")
        pulls = [s for s in res.spans if s.phase is Phase.PULL]
        comps = [s for s in res.spans if s.phase is Phase.COMPUTE]
        pushes = [s for s in res.spans if s.phase is Phase.PUSH]
        assert len(pulls) == len(comps) == len(pushes) == 3

    def test_dependencies_respected(self):
        res = pipeline_schedule(1.0, 2.0, 1.0, streams=3)
        pulls = sorted((s for s in res.spans if s.phase is Phase.PULL), key=lambda s: s.start)
        comps = sorted((s for s in res.spans if s.phase is Phase.COMPUTE), key=lambda s: s.start)
        pushes = sorted((s for s in res.spans if s.phase is Phase.PUSH), key=lambda s: s.start)
        for i in range(3):
            assert comps[i].start >= pulls[i].end - 1e-12
            assert pushes[i].start >= comps[i].end - 1e-12

    def test_engines_serial(self):
        res = pipeline_schedule(2.0, 1.0, 2.0, streams=4)
        for phase in (Phase.PULL, Phase.COMPUTE, Phase.PUSH):
            spans = sorted(
                (s for s in res.spans if s.phase is phase), key=lambda s: s.start
            )
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12

    def test_no_spans_for_zero_phases(self):
        res = pipeline_schedule(0.0, 2.0, 0.0, streams=2)
        assert all(s.phase is Phase.COMPUTE for s in res.spans)

    def test_epoch_time_matches_spans(self):
        res = pipeline_schedule(1.0, 3.0, 1.0, streams=2, t0=5.0)
        assert max(s.end for s in res.spans) == pytest.approx(5.0 + res.epoch_time)


class TestTheory:
    def test_theoretical_formula(self):
        assert theoretical_exposed_comm(2.0, 2.0, 4) == pytest.approx(1.0)

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            theoretical_exposed_comm(1, 1, 0)
