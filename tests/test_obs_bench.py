"""Unit tests for the pinned perf suite (repro.obs.bench + schema)."""

import json

import pytest

from repro.obs.bench import (
    EXIT_REGRESSION,
    BenchConfig,
    BenchValidationError,
    MetricResult,
    compare_docs,
    host_fingerprint,
    kernel_workload,
    load_bench,
    run_suite,
    write_bench,
)
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench


def _metric(name="m", kind="throughput", repeats=(10.0, 12.0), **meta):
    return MetricResult(
        name=name, unit="u", kind=kind, repeats=tuple(repeats), meta=meta
    ).to_dict()


def _doc(metrics=None):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "train",
        "provenance": {
            "git_sha": "abc123",
            "timestamp_utc": "2026-08-09T00:00:00+00:00",
            "quick": True,
            "config": {},
        },
        "host": host_fingerprint(),
        "metrics": metrics if metrics is not None else [_metric()],
    }


class TestSchema:
    def test_valid_document_passes(self):
        assert validate_bench(_doc()) == []

    def test_missing_required_key(self):
        doc = _doc()
        del doc["host"]
        problems = validate_bench(doc)
        assert any("host" in p for p in problems)

    def test_wrong_type_reported_with_path(self):
        doc = _doc()
        doc["provenance"]["git_sha"] = 42
        problems = validate_bench(doc)
        assert any("$.provenance.git_sha" in p for p in problems)

    def test_bool_is_not_an_integer(self):
        # python bool subclasses int; the schema must still reject it
        doc = _doc()
        doc["host"]["cpu_count"] = True
        problems = validate_bench(doc)
        assert any("cpu_count" in p for p in problems)

    def test_unknown_metric_kind_rejected(self):
        doc = _doc([_metric(kind="latency")])
        problems = validate_bench(doc)
        assert any("kind" in p for p in problems)

    def test_future_schema_version_rejected(self):
        doc = _doc()
        doc["schema_version"] = BENCH_SCHEMA_VERSION + 1
        problems = validate_bench(doc)
        assert any("schema_version" in p for p in problems)

    def test_duplicate_metric_names_rejected(self):
        doc = _doc([_metric("same"), _metric("same")])
        problems = validate_bench(doc)
        assert any("duplicate" in p for p in problems)

    def test_empty_repeats_rejected(self):
        metric = _metric()
        metric["repeats"] = []
        problems = validate_bench(_doc([metric]))
        assert any("repeats" in p for p in problems)

    def test_inconsistent_mean_rejected(self):
        metric = _metric(repeats=(10.0, 12.0))
        metric["mean"] = 999.0
        problems = validate_bench(_doc([metric]))
        assert any("mean" in p for p in problems)

    def test_inconsistent_min_rejected(self):
        metric = _metric(repeats=(10.0, 12.0))
        metric["min"] = 1.0
        problems = validate_bench(_doc([metric]))
        assert any("min" in p for p in problems)

    def test_non_dict_document(self):
        assert validate_bench([1, 2]) != []


class TestMetricResult:
    def test_stats_from_repeats(self):
        m = MetricResult("m", "u", "time", (1.0, 2.0, 3.0), {})
        d = m.to_dict()
        assert d["mean"] == pytest.approx(2.0)
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["stdev"] == pytest.approx(1.0)

    def test_single_repeat_has_zero_stdev(self):
        assert MetricResult("m", "u", "time", (5.0,), {}).stdev == 0.0


class TestBenchConfig:
    def test_quick_config_is_flagged(self):
        cfg = BenchConfig.quick_config()
        assert cfg.quick is True
        assert cfg.repeats == 1
        assert cfg.nnz < BenchConfig().nnz

    def test_quick_overrides(self):
        assert BenchConfig.quick_config(nnz=123).nnz == 123

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BenchConfig(nnz=0)
        with pytest.raises(ValueError):
            BenchConfig(repeats=-1)


class TestRunSuite:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suites"):
            run_suite(BenchConfig.quick_config(), suites=("nope",))

    def test_wire_suite_document_is_schema_valid(self):
        doc = run_suite(BenchConfig.quick_config(), suites=("wire",))
        assert validate_bench(doc) == []
        names = [m["name"] for m in doc["metrics"]]
        # one metric per channel stack, FP16 and double-buffer included
        assert any("q-only" in n for n in names)
        assert any("fp16" in n for n in names)
        assert any("double-buffer" in n for n in names)
        assert all(m["kind"] == "throughput" for m in doc["metrics"])

    def test_kernel_suite_covers_policies_and_variants(self):
        doc = run_suite(BenchConfig.quick_config(), suites=("kernel",))
        assert validate_bench(doc) == []
        names = {m["name"] for m in doc["metrics"]}
        assert "kernel/sgd[atomic]/updates_per_s" in names
        assert "kernel/sgd[last_write]/updates_per_s" in names
        for variant in ("fpsgd", "dsgd", "nomad"):
            assert f"kernel/{variant}/updates_per_s" in names
        assert all(m["mean"] > 0 for m in doc["metrics"])

    def test_provenance_and_host_recorded(self):
        doc = run_suite(BenchConfig.quick_config(), suites=("wire",))
        assert doc["provenance"]["quick"] is True
        assert doc["provenance"]["config"]["nnz"] == 2000
        assert doc["host"]["cpu_count"] >= 1
        assert doc["host"]["numpy"]

    def test_log_callback_sees_each_suite(self):
        seen = []
        run_suite(BenchConfig.quick_config(), suites=("wire",),
                  log=seen.append)
        assert len(seen) == 1 and "wire" in seen[0]

    def test_workload_is_pinned(self):
        a = kernel_workload(2000, 0)
        b = kernel_workload(2000, 0)
        assert a.nnz == b.nnz
        assert (a.vals == b.vals).all()


class TestDocumentIO:
    def test_write_load_round_trip(self, tmp_path):
        doc = _doc()
        path = tmp_path / "BENCH_train.json"
        write_bench(doc, path)
        assert load_bench(path) == doc

    def test_write_rejects_invalid_document(self, tmp_path):
        doc = _doc()
        del doc["metrics"]
        with pytest.raises(BenchValidationError):
            write_bench(doc, tmp_path / "b.json")

    def test_load_rejects_tampered_document(self, tmp_path):
        doc = _doc()
        path = tmp_path / "b.json"
        write_bench(doc, path)
        raw = json.loads(path.read_text())
        raw["metrics"][0]["mean"] = 1e9
        path.write_text(json.dumps(raw))
        with pytest.raises(BenchValidationError):
            load_bench(path)


class TestCompare:
    def _docs(self, old_mean, new_mean, kind="throughput", stdev=0.0):
        def repeats(mean):
            if stdev == 0.0:
                return (mean,)
            return (mean - stdev, mean + stdev)

        old = _doc([_metric("m", kind=kind, repeats=repeats(old_mean))])
        new = _doc([_metric("m", kind=kind, repeats=repeats(new_mean))])
        return old, new

    def test_self_compare_is_clean(self):
        doc = _doc()
        report = compare_docs(doc, doc)
        assert report.ok
        assert [r.verdict for r in report.rows] == ["ok"]

    def test_throughput_drop_is_a_regression(self):
        old, new = self._docs(100.0, 80.0)
        report = compare_docs(old, new, threshold_pct=5.0)
        assert not report.ok
        assert report.regressions[0].name == "m"
        assert report.regressions[0].delta_pct == pytest.approx(-20.0)

    def test_time_increase_is_a_regression(self):
        old, new = self._docs(1.0, 1.5, kind="time")
        report = compare_docs(old, new, threshold_pct=5.0)
        assert not report.ok

    def test_time_decrease_is_an_improvement(self):
        old, new = self._docs(1.0, 0.5, kind="time")
        report = compare_docs(old, new, threshold_pct=5.0)
        assert report.ok
        assert report.rows[0].verdict == "improved"

    def test_noise_margin_widens_threshold(self):
        # a 20% drop inside a noisy metric's 2-sigma band must not fail
        old, new = self._docs(100.0, 80.0, stdev=15.0)
        report = compare_docs(old, new, threshold_pct=5.0)
        assert report.ok
        assert report.rows[0].margin_pct > 5.0

    def test_small_delta_within_threshold_ok(self):
        old, new = self._docs(100.0, 98.0)
        assert compare_docs(old, new, threshold_pct=5.0).ok

    def test_added_and_removed_metrics_never_fail(self):
        old = _doc([_metric("gone"), _metric("kept")])
        new = _doc([_metric("kept"), _metric("fresh")])
        report = compare_docs(old, new)
        verdicts = {r.name: r.verdict for r in report.rows}
        assert verdicts == {"gone": "removed", "kept": "ok", "fresh": "added"}
        assert report.ok

    def test_host_change_noted_in_render(self):
        old = _doc()
        new = _doc()
        new["host"] = dict(new["host"], cpu_count=old["host"]["cpu_count"] + 1)
        report = compare_docs(old, new)
        assert report.host_changed
        assert "fingerprints differ" in report.render()

    def test_negative_threshold_rejected(self):
        doc = _doc()
        with pytest.raises(ValueError):
            compare_docs(doc, doc, threshold_pct=-1.0)

    def test_exit_code_constant_is_distinct(self):
        assert EXIT_REGRESSION not in (0, 1, 2)


class TestEndToEnd:
    """The acceptance path: full document across all three suites."""

    def test_quick_suite_covers_all_planes(self, tmp_path, netflix_quick_doc):
        doc = netflix_quick_doc
        assert validate_bench(doc) == []
        names = {m["name"] for m in doc["metrics"]}
        assert "epoch/sim/seconds" in names
        assert "epoch/process/seconds" in names
        assert "epoch/process/updates_per_s" in names
        assert any(n.startswith("kernel/") for n in names)
        assert any(n.startswith("wire/") for n in names)
        path = tmp_path / "BENCH_train.json"
        write_bench(doc, path)
        report = compare_docs(load_bench(path), doc)
        assert report.ok

    def test_injected_regression_detected(self, netflix_quick_doc):
        doc = netflix_quick_doc
        slowed = json.loads(json.dumps(doc))
        for metric in slowed["metrics"]:
            if metric["name"] == "epoch/process/seconds":
                metric["repeats"] = [r * 2.0 for r in metric["repeats"]]
                metric["mean"] *= 2.0
                metric["stdev"] *= 2.0
                metric["min"] *= 2.0
                metric["max"] *= 2.0
        report = compare_docs(doc, slowed, threshold_pct=5.0)
        assert not report.ok
        assert [r.name for r in report.regressions] == [
            "epoch/process/seconds"
        ]


@pytest.fixture(scope="module")
def netflix_quick_doc():
    """One shared quick full-suite run (spawns worker processes)."""
    return run_suite(BenchConfig.quick_config())
