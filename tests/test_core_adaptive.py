"""Unit tests for online adaptive re-partitioning."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveRepartitioner,
    SlowdownEvent,
    simulate_adaptive_run,
)
from repro.data.datasets import NETFLIX
from repro.hardware.topology import paper_workstation


class TestRepartitioner:
    def test_balanced_times_no_action(self):
        c = AdaptiveRepartitioner([0.25] * 4)
        assert c.observe([1.0, 1.0, 1.02, 0.99]) is None
        assert c.repartitions == 0

    def test_straggler_triggers_rebalance(self):
        c = AdaptiveRepartitioner([0.25] * 4, imbalance_threshold=0.15)
        new = c.observe([1.0, 1.0, 1.0, 2.0])  # worker 3 twice as slow
        assert new is not None
        assert c.repartitions == 1
        # the straggler sheds data...
        assert new[3] < 0.25
        # ...and the result balances under the observed rates
        rates = np.asarray([0.25, 0.25, 0.25, 0.125])  # x/t
        np.testing.assert_allclose(new, rates / rates.sum())

    def test_rebalanced_times_equalize(self):
        c = AdaptiveRepartitioner([0.25] * 4)
        new = c.observe([1.0, 1.0, 1.0, 2.0])
        # under unchanged rates the new partition's times are equal
        rates = np.asarray([0.25, 0.25, 0.25, 0.125])
        times = new / rates
        np.testing.assert_allclose(times, times[0])

    def test_cooldown(self):
        c = AdaptiveRepartitioner([0.5, 0.5], cooldown_epochs=2)
        assert c.observe([1.0, 3.0]) is not None
        assert c.observe([1.0, 3.0]) is None  # cooling down
        assert c.observe([1.0, 3.0]) is None
        assert c.observe([1.0, 3.0]) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRepartitioner([0.7, 0.7])
        with pytest.raises(ValueError):
            AdaptiveRepartitioner([0.5, 0.5], imbalance_threshold=0.0)
        c = AdaptiveRepartitioner([0.5, 0.5])
        with pytest.raises(ValueError):
            c.observe([1.0])
        with pytest.raises(ValueError):
            c.observe([1.0, 0.0])


class TestSlowdownEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlowdownEvent(0, 0, factor=0.0)
        with pytest.raises(ValueError):
            SlowdownEvent(0, -1, factor=0.5)


class TestSimulatedAdaptiveRun:
    @pytest.fixture(scope="class")
    def runs(self):
        plat = paper_workstation(16)
        events = [SlowdownEvent(worker_index=2, epoch=5, factor=0.5)]
        static = simulate_adaptive_run(plat, NETFLIX, events, epochs=20, adaptive=False)
        adaptive = simulate_adaptive_run(plat, NETFLIX, events, epochs=20, adaptive=True)
        return static, adaptive

    def test_adaptation_recovers_time(self, runs):
        static, adaptive = runs
        assert adaptive.total_time < 0.85 * static.total_time

    def test_repartition_fires_at_event(self, runs):
        _, adaptive = runs
        assert adaptive.repartition_epochs
        assert adaptive.repartition_epochs[0] == 5

    def test_post_adaptation_epochs_faster(self, runs):
        static, adaptive = runs
        assert adaptive.epoch_totals[8] < static.epoch_totals[8]

    def test_pre_event_epochs_identical(self, runs):
        static, adaptive = runs
        for e in range(5):
            assert adaptive.epoch_totals[e] == pytest.approx(static.epoch_totals[e])

    def test_no_events_no_repartitions(self):
        plat = paper_workstation(16)
        run = simulate_adaptive_run(plat, NETFLIX, [], epochs=5, adaptive=True)
        assert run.repartition_epochs == []

    def test_out_of_range_event(self):
        plat = paper_workstation(16)
        with pytest.raises(IndexError):
            simulate_adaptive_run(
                plat, NETFLIX, [SlowdownEvent(99, 0, 0.5)], epochs=2
            )

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            simulate_adaptive_run(paper_workstation(16), NETFLIX, [], epochs=0)
