"""The epoch engine: providers, policies, results, and backend parity.

The parity tests spawn real worker processes; sizes are kept small so
the module runs in a few seconds.
"""

import numpy as np
import pytest

from repro.core.partition import PartitionPlan
from repro.data.datasets import NETFLIX
from repro.engine import (
    AdditiveDeltaSync,
    Channel,
    EngineResult,
    EpochEngine,
    EvenProvider,
    Fp16Channel,
    FixedPlanProvider,
    FractionsProvider,
    ProcessBackend,
    QOnlyChannel,
    QRotateChannel,
    SimBackend,
    STAGES,
    StageEvent,
    WeightedAverageSync,
    as_provider,
    provider_from,
)
from repro.experiments.platforms import workers_platform


@pytest.fixture(scope="module")
def data():
    return NETFLIX.scaled(5000).generate(seed=7)


class TestPartitionProviders:
    def test_as_provider_none_is_even(self):
        plan = as_provider(None).plan(3)
        assert plan.fractions == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_as_provider_wraps_plan(self):
        fixed = PartitionPlan("dp1", (0.25, 0.75))
        provider = as_provider(fixed)
        assert isinstance(provider, FixedPlanProvider)
        assert provider.plan(2) is fixed

    def test_as_provider_wraps_fractions(self):
        provider = as_provider([0.4, 0.6])
        assert isinstance(provider, FractionsProvider)
        assert provider.plan(2).fractions == pytest.approx((0.4, 0.6))

    def test_as_provider_passes_providers_through(self):
        even = EvenProvider()
        assert as_provider(even) is even

    def test_as_provider_rejects_garbage(self):
        with pytest.raises(TypeError, match="partition provider"):
            as_provider(42)

    def test_fixed_plan_worker_count_must_match(self):
        provider = FixedPlanProvider(PartitionPlan("dp0", (0.5, 0.5)))
        with pytest.raises(ValueError, match="2 fractions"):
            provider.plan(3)

    def test_fractions_length_must_match(self):
        with pytest.raises(ValueError, match="for 3 workers"):
            FractionsProvider((0.5, 0.5)).plan(3)

    def test_provider_from_rejects_both(self):
        with pytest.raises(ValueError, match="not both"):
            provider_from([0.5, 0.5], [0.5, 0.5])


class TestSyncPolicies:
    def test_additive_delta_weight_is_one(self):
        assert AdditiveDeltaSync().weight(1, (0.3, 0.7)) == 1.0
        assert AdditiveDeltaSync().name == "additive-delta"

    def test_weighted_average_uses_fractions(self):
        policy = WeightedAverageSync()
        assert policy.weight(1, (0.3, 0.7)) == pytest.approx(0.7)
        assert policy.name == "weighted-average"


class TestEngineResult:
    def _result(self, trace):
        return EngineResult(
            backend="sim", channel="q-only(full)", sync_policy="additive-delta",
            plan=PartitionPlan("even", (1.0,)), epochs=2,
            stage_trace=tuple(trace), rmse_history=[1.0, 0.9],
        )

    def test_stage_sequence_and_updates(self):
        trace = [
            StageEvent(0, "pull", {"wire_bytes": 100}),
            StageEvent(0, "compute", {"updates": (40, 60)}),
            StageEvent(0, "push", {"wire_bytes": 80}),
            StageEvent(0, "sync"),
            StageEvent(1, "pull", {"wire_bytes": 100}),
            StageEvent(1, "compute", {"updates": (40, 60)}),
            StageEvent(1, "push", {"wire_bytes": 80}),
            StageEvent(1, "sync"),
        ]
        res = self._result(trace)
        assert res.stage_sequence() == [
            (e, s) for e in (0, 1) for s in STAGES
        ]
        assert res.epoch_updates() == {0: (40, 60), 1: (40, 60)}
        assert res.updates_applied == 200
        assert res.wire_bytes("pull") == 200
        assert res.wire_bytes("push") == 160

    def test_wire_bytes_only_for_transfer_stages(self):
        with pytest.raises(ValueError, match="pull and push"):
            self._result([]).wire_bytes("sync")


class TestEngineValidation:
    def test_epochs_must_be_positive(self, data):
        backend = ProcessBackend(data, k=4, n_workers=1)
        with pytest.raises(ValueError, match="epochs"):
            EpochEngine(backend, channel=QOnlyChannel()).run(0)


class TestProcessChannelGuards:
    def test_rejects_p_and_q_channel(self, data):
        engine = EpochEngine(ProcessBackend(data, k=4, n_workers=1),
                             channel=Channel())
        with pytest.raises(ValueError, match="Q-only channel"):
            engine.run(1)

    def test_rejects_q_rotate_channel(self, data):
        engine = EpochEngine(ProcessBackend(data, k=4, n_workers=1),
                             channel=QRotateChannel())
        with pytest.raises(ValueError, match="q-rotate"):
            engine.run(1)


class TestBackendParity:
    """The planes-unified gate: both backends run the same pipeline."""

    def _run(self, data, backend_kind, epochs=2):
        if backend_kind == "sim":
            backend = SimBackend(
                workers_platform(2), ratings=data, eval_data=data,
                k=8, lr=0.01, reg=0.02, batch_size=2048, seed=0,
            )
        else:
            backend = ProcessBackend(
                data, k=8, n_workers=2, lr=0.01, reg=0.02,
                batch_size=2048, seed=0,
            )
        return EpochEngine(backend, channel=QOnlyChannel()).run(epochs)

    def test_identical_stage_sequences(self, data):
        sim = self._run(data, "sim")
        proc = self._run(data, "process")
        assert sim.stage_sequence() == proc.stage_sequence()
        assert sim.stage_sequence() == [
            (e, s) for e in (0, 1) for s in STAGES
        ]

    def test_identical_update_counts(self, data):
        sim = self._run(data, "sim")
        proc = self._run(data, "process")
        assert sim.epoch_updates() == proc.epoch_updates()
        assert sim.updates_applied == data.nnz * 2

    def test_both_planes_converge(self, data):
        for kind in ("sim", "process"):
            res = self._run(data, kind, epochs=3)
            assert len(res.rmse_history) == 3
            assert res.rmse_history[-1] < res.rmse_history[0]
            assert np.all(np.isfinite(res.model.P))

    def test_result_records_the_configuration(self, data):
        res = self._run(data, "sim")
        assert res.backend == "sim"
        assert res.channel == "q-only(full)"
        assert res.sync_policy == "additive-delta"
        assert res.plan.fractions == pytest.approx((0.5, 0.5))
