"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress_fp16, decompress_fp16, wire_bytes
from repro.core.partition import dp0, dp2, even_partition, exposed_sync_time
from repro.data.grid import GridKind, coverage_check, partition_rows
from repro.data.ratings import RatingMatrix
from repro.hardware.streams import pipeline_schedule
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def rating_matrices(draw, max_m=40, max_n=30, max_nnz=200):
    m = draw(st.integers(2, max_m))
    n = draw(st.integers(2, max_n))
    nnz = draw(st.integers(1, min(max_nnz, m * n)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    flat = rng.choice(m * n, size=nnz, replace=False)
    vals = rng.uniform(1.0, 5.0, size=nnz).astype(np.float32)
    return RatingMatrix(m, n, flat // n, flat % n, vals)


@st.composite
def fraction_vectors(draw, max_len=6):
    length = draw(st.integers(1, max_len))
    raw = draw(
        st.lists(st.floats(0.01, 10.0, allow_nan=False), min_size=length, max_size=length)
    )
    total = sum(raw)
    return [v / total for v in raw]


# ---------------------------------------------------------------------------
# partition properties
# ---------------------------------------------------------------------------
class TestPartitionProperties:
    @given(times=st.lists(st.floats(0.01, 1e3), min_size=1, max_size=8))
    def test_dp0_on_simplex(self, times):
        plan = dp0(times)
        fr = np.asarray(plan.fractions)
        assert abs(fr.sum() - 1.0) < 1e-9
        assert np.all(fr > 0)

    @given(times=st.lists(st.floats(0.01, 1e3), min_size=2, max_size=8))
    def test_dp0_faster_worker_gets_more(self, times):
        plan = dp0(times)
        for i in range(len(times)):
            for j in range(len(times)):
                if times[i] < times[j]:  # i is strictly faster
                    assert plan.fractions[i] >= plan.fractions[j]

    @given(times=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=8))
    def test_dp0_equalizes_predicted_times(self, times):
        plan = dp0(times)
        pred = np.asarray(plan.predicted_times)
        assert np.allclose(pred, pred[0], rtol=1e-9)

    @given(
        base_times=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6),
        tsync=st.floats(0.0, 1.0),
    )
    def test_dp2_on_simplex(self, base_times, tsync):
        p = len(base_times)
        base = dp0([1.0] * p)
        base = type(base)("dp1", base.fractions, tuple(base_times))
        plan = dp2(base, tsync)
        fr = np.asarray(plan.fractions)
        assert abs(fr.sum() - 1.0) < 1e-9
        assert np.all(fr >= 0)

    @given(
        finishes=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=10),
        tsync=st.floats(0.0, 5.0),
    )
    def test_exposed_sync_bounds(self, finishes, tsync):
        exposed = exposed_sync_time(finishes, tsync)
        # at least one merge is always exposed; at most all serialize
        assert tsync - 1e-9 <= exposed <= len(finishes) * tsync + 1e-9

    @given(n=st.integers(1, 16))
    def test_even_partition_uniform(self, n):
        plan = even_partition(n)
        assert len(set(plan.fractions)) == 1


# ---------------------------------------------------------------------------
# grid properties
# ---------------------------------------------------------------------------
class TestGridProperties:
    @settings(max_examples=40, deadline=None)
    @given(ratings=rating_matrices(), fractions=fraction_vectors())
    def test_row_partition_is_exact_cover(self, ratings, fractions):
        parts = partition_rows(ratings, fractions, GridKind.ROW)
        assert coverage_check(ratings, parts)

    @settings(max_examples=40, deadline=None)
    @given(ratings=rating_matrices(), fractions=fraction_vectors())
    def test_row_partition_ranges_tile_axis(self, ratings, fractions):
        parts = partition_rows(ratings, fractions, GridKind.ROW)
        assert parts[0].lo == 0
        assert parts[-1].hi == ratings.m
        for a, b in zip(parts, parts[1:]):
            assert a.hi == b.lo

    @settings(max_examples=40, deadline=None)
    @given(ratings=rating_matrices(), fractions=fraction_vectors())
    def test_row_exclusivity(self, ratings, fractions):
        """No two workers ever share a user row (Strategy 1's invariant)."""
        parts = partition_rows(ratings, fractions, GridKind.ROW)
        seen: set[int] = set()
        for p in parts:
            rows = set(np.unique(ratings.rows[p.entries]).tolist())
            assert not rows & seen
            seen |= rows


# ---------------------------------------------------------------------------
# compression properties
# ---------------------------------------------------------------------------
class TestCompressionProperties:
    @given(
        values=st.lists(
            st.floats(-16384.0, 16384.0, allow_nan=False, width=32),
            min_size=1, max_size=200,
        )
    )
    def test_roundtrip_always_finite(self, values):
        arr = np.asarray(values, dtype=np.float32)
        back = decompress_fp16(compress_fp16(arr))
        assert np.all(np.isfinite(back))

    @given(
        values=st.lists(
            st.floats(0.0078125, 128.0, allow_nan=False, width=32),
            min_size=1, max_size=200,
        )
    )
    def test_relative_error_bound(self, values):
        arr = np.asarray(values, dtype=np.float32)
        back = decompress_fp16(compress_fp16(arr)).astype(np.float64)
        rel = np.abs(back - arr.astype(np.float64)) / np.abs(arr.astype(np.float64))
        assert np.max(rel) <= 2.0**-11 * (1 + 1e-6)

    @given(n=st.integers(0, 10_000), fp16=st.booleans())
    def test_wire_bytes_halving(self, n, fp16):
        assert wire_bytes(n, fp16) == n * (2 if fp16 else 4)


# ---------------------------------------------------------------------------
# pipeline properties
# ---------------------------------------------------------------------------
class TestPipelineProperties:
    @given(
        pull=st.floats(0.0, 10.0),
        comp=st.floats(0.0, 10.0),
        push=st.floats(0.0, 10.0),
        streams=st.integers(1, 8),
        engines=st.sampled_from([1, 2]),
    )
    def test_epoch_time_bounds(self, pull, comp, push, streams, engines):
        res = pipeline_schedule(pull, comp, push, streams, engines)
        total = pull + comp + push
        # never faster than any single resource, never slower than serial
        assert res.epoch_time >= max(pull, comp, push) - 1e-9
        assert res.epoch_time <= total + 1e-9

    @given(
        pull=st.floats(0.01, 10.0),
        comp=st.floats(0.01, 10.0),
        push=st.floats(0.01, 10.0),
        streams=st.integers(1, 8),
    )
    def test_phase_work_conserved(self, pull, comp, push, streams):
        res = pipeline_schedule(pull, comp, push, streams)
        from repro.hardware.timeline import Phase

        by_phase = {Phase.PULL: 0.0, Phase.COMPUTE: 0.0, Phase.PUSH: 0.0}
        for s in res.spans:
            by_phase[s.phase] += s.duration
        assert by_phase[Phase.PULL] == np.float64(pull).item() or abs(by_phase[Phase.PULL] - pull) < 1e-9
        assert abs(by_phase[Phase.COMPUTE] - comp) < 1e-9
        assert abs(by_phase[Phase.PUSH] - push) < 1e-9


# ---------------------------------------------------------------------------
# SGD kernel properties
# ---------------------------------------------------------------------------
class TestKernelProperties:
    @settings(max_examples=25, deadline=None)
    @given(ratings=rating_matrices(max_nnz=100), policy=st.sampled_from(list(ConflictPolicy)))
    def test_update_keeps_parameters_finite(self, ratings, policy):
        model = MFModel.init_for(ratings, 4, seed=0)
        sgd_batch_update(
            model, ratings.rows, ratings.cols, ratings.vals,
            lr=0.01, reg=0.01, policy=policy,
        )
        assert np.all(np.isfinite(model.P))
        assert np.all(np.isfinite(model.Q))

    @settings(max_examples=25, deadline=None)
    @given(ratings=rating_matrices(max_nnz=100))
    def test_zero_lr_is_noop(self, ratings):
        model = MFModel.init_for(ratings, 4, seed=0)
        p0, q0 = model.P.copy(), model.Q.copy()
        sgd_batch_update(model, ratings.rows, ratings.cols, ratings.vals, 0.0, 0.5)
        np.testing.assert_array_equal(model.P, p0)
        np.testing.assert_array_equal(model.Q, q0)

    @settings(max_examples=15, deadline=None)
    @given(ratings=rating_matrices(max_nnz=60), seed=st.integers(0, 1000))
    def test_rmse_never_negative(self, ratings, seed):
        model = MFModel.init_for(ratings, 3, seed=seed)
        assert model.rmse(ratings) >= 0.0
