"""Unit tests for the CuMF_SGD-style batched GPU baseline."""

import numpy as np
import pytest

from repro.mf.cumf import CuMFSGD


class TestCuMFSGD:
    def test_converges(self, small_ratings):
        c = CuMFSGD(k=8, gpu_threads=2048, lr=0.01, reg=0.01, seed=0)
        c.fit(small_ratings, epochs=6)
        assert c.history.rmse[-1] < c.history.rmse[0]

    def test_block_sorting_preserves_waves(self, small_ratings):
        """Row sorting happens inside each thread-wave slice, so wave
        membership (which ratings race with which) is unchanged."""
        c = CuMFSGD(k=4, gpu_threads=512, seed=0)
        rng = np.random.default_rng(0)
        data = c._prepare(small_ratings, rng)
        plain = CuMFSGD(k=4, gpu_threads=512, block_sorting=False, seed=0)
        rng2 = np.random.default_rng(0)
        data_plain = plain._prepare(small_ratings, rng2)
        assert data.nnz == small_ratings.nnz
        for lo in range(0, data.nnz, 512):
            hi = min(lo + 512, data.nnz)
            a = set(zip(data.rows[lo:hi].tolist(), data.cols[lo:hi].tolist()))
            b = set(zip(data_plain.rows[lo:hi].tolist(), data_plain.cols[lo:hi].tolist()))
            assert a == b

    def test_block_sorting_sorts_within_wave(self, small_ratings):
        c = CuMFSGD(k=4, gpu_threads=512, seed=0)
        data = c._prepare(small_ratings, np.random.default_rng(0))
        for lo in range(0, data.nnz, 512):
            hi = min(lo + 512, data.nnz)
            rows = data.rows[lo:hi]
            assert np.all(np.diff(rows) >= 0)

    def test_sorting_toggle_changes_order_not_result_scale(self, small_ratings):
        a = CuMFSGD(k=8, gpu_threads=1024, lr=0.01, seed=0, block_sorting=True)
        b = CuMFSGD(k=8, gpu_threads=1024, lr=0.01, seed=0, block_sorting=False)
        a.fit(small_ratings, epochs=4)
        b.fit(small_ratings, epochs=4)
        assert abs(a.history.rmse[-1] - b.history.rmse[-1]) < 0.1

    def test_wave_size_effect_bounded(self, small_ratings):
        """Bigger waves mean more lost updates but convergence survives
        (Hogwild's sparse-data argument)."""
        small = CuMFSGD(k=8, gpu_threads=256, lr=0.01, seed=0)
        large = CuMFSGD(k=8, gpu_threads=8192, lr=0.01, seed=0)
        small.fit(small_ratings, epochs=6)
        large.fit(small_ratings, epochs=6)
        assert large.history.rmse[-1] < large.history.rmse[0]
        # the oversized wave loses many updates on this tiny item axis,
        # so it converges slower — but by a bounded margin, not divergence
        assert small.history.rmse[-1] < large.history.rmse[-1]
        assert abs(small.history.rmse[-1] - large.history.rmse[-1]) < 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CuMFSGD(k=0)
        with pytest.raises(ValueError):
            CuMFSGD(k=4, gpu_threads=0)

    def test_deterministic(self, small_ratings):
        a = CuMFSGD(k=4, gpu_threads=1024, seed=9)
        b = CuMFSGD(k=4, gpu_threads=1024, seed=9)
        a.fit(small_ratings, epochs=3)
        b.fit(small_ratings, epochs=3)
        assert a.history.rmse == b.history.rmse
