"""Unit tests for the resilience plane: faults, health, policy."""

import pickle

import pytest

from repro.core.config import HCCConfig, RecoveryPolicy
from repro.core.partition import PartitionPlan
from repro.resilience import (
    Fault,
    FaultPlan,
    HealthReport,
    RecoveryAction,
    ResilienceSummary,
    TrainingAborted,
    WorkerHealth,
    WorkerState,
    classify,
    decide,
    redistribute,
)
from repro.resilience.faults import CORRUPT, DELAY, DROP, KILL, fault_at


class TestFaultPlan:
    def test_builders_accumulate(self):
        plan = (
            FaultPlan()
            .kill(1, epoch=2)
            .delay_barrier(0, epoch=3, seconds=1.5)
            .drop_payload(2, epoch=4)
            .corrupt_payload(0, epoch=5)
        )
        assert len(plan) == 4
        assert bool(plan)
        assert not FaultPlan()
        kinds = [f.kind for f in plan.faults]
        assert kinds == [KILL, DELAY, DROP, CORRUPT]

    def test_builders_return_new_plans(self):
        base = FaultPlan()
        extended = base.kill(0, epoch=0)
        assert len(base) == 0
        assert len(extended) == 1

    def test_for_rank_slices(self):
        plan = FaultPlan().kill(0, epoch=1).kill(1, epoch=2).drop_payload(0, epoch=3)
        assert [f.epoch for f in plan.for_rank(0)] == [1, 3]
        assert [f.epoch for f in plan.for_rank(1)] == [2]
        assert plan.for_rank(7) == ()

    def test_without_epochs_through_retires_fired_faults(self):
        plan = FaultPlan().kill(0, epoch=1).corrupt_payload(1, epoch=3)
        survived = plan.without_epochs_through(1)
        assert [f.epoch for f in survived.faults] == [3]
        assert len(plan.without_epochs_through(3)) == 0

    def test_remap_ranks_follows_survivors(self):
        plan = FaultPlan().kill(3, epoch=2).drop_payload(0, epoch=3)
        remapped = plan.remap_ranks({1}, n_workers=4)
        # survivors 0,2,3 compact to 0,1,2: rank 3 -> 2, rank 0 -> 0
        assert [(f.rank, f.epoch) for f in remapped.faults] == [(2, 2), (0, 3)]

    def test_remap_ranks_drops_dead_targets(self):
        plan = FaultPlan().kill(1, epoch=2).corrupt_payload(2, epoch=3)
        remapped = plan.remap_ranks({1}, n_workers=3)
        assert [(f.rank, f.kind) for f in remapped.faults] == [(1, CORRUPT)]

    def test_remap_ranks_drops_out_of_plan_targets(self):
        plan = FaultPlan().kill(5, epoch=2)
        assert len(plan.remap_ranks({0}, n_workers=3)) == 0

    def test_remap_ranks_two_deaths_sequence(self):
        # a 4-worker plan losing rank 1, then (old) rank 3: the pending
        # kill aimed at old rank 3 must land on new rank 2 after the
        # first remap, and the drop aimed at old rank 2 must follow its
        # worker to rank 1 through both renumberings
        plan = FaultPlan().kill(1, epoch=1).kill(3, epoch=2).drop_payload(2, epoch=3)
        after_first = plan.without_epochs_through(1).remap_ranks({1}, n_workers=4)
        assert [(f.rank, f.epoch) for f in after_first.faults] == [(2, 2), (1, 3)]
        after_second = after_first.without_epochs_through(2).remap_ranks(
            {2}, n_workers=3
        )
        assert [(f.rank, f.epoch) for f in after_second.faults] == [(1, 3)]

    def test_fault_at_lookup(self):
        faults = FaultPlan().kill(0, epoch=2).for_rank(0)
        assert fault_at(faults, KILL, 2) is not None
        assert fault_at(faults, KILL, 1) is None
        assert fault_at(faults, DROP, 2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Fault("explode", rank=0, epoch=0)
        with pytest.raises(ValueError):
            Fault(KILL, rank=-1, epoch=0)
        with pytest.raises(ValueError):
            Fault(DELAY, rank=0, epoch=0, seconds=-1.0)
        with pytest.raises(ValueError):
            Fault(KILL, rank=0, epoch=0, seconds=2.0)  # seconds is DELAY-only
        with pytest.raises(ValueError):
            Fault(DROP, rank=0, epoch=0, hard=True)  # hard is KILL-only
        with pytest.raises(ValueError):
            Fault(DELAY, rank=0, epoch=0, seconds=1.0, point="middle")

    def test_plan_pickles_for_spawned_workers(self):
        plan = FaultPlan().kill(1, epoch=2, hard=True).delay_barrier(0, epoch=1, seconds=0.5)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.for_rank(1)[0].hard


class TestClassify:
    def test_missing_alive_rank_is_straggling(self):
        report = classify(3, missing_ranks=(1,), exitcodes=[None, None, None])
        assert report.straggler_ranks == (1,)
        assert report.dead_ranks == ()
        assert report.healthy_ranks == (0, 2)
        assert not report.ok

    def test_nonzero_exit_is_dead_even_when_stamped(self):
        # a killed worker may have stamped before dying
        report = classify(2, missing_ranks=(), exitcodes=[None, -9])
        assert report.dead_ranks == (1,)

    def test_missing_clean_exit_is_dead(self):
        # exited before finishing its epochs: it will never arrive
        report = classify(2, missing_ranks=(0,), exitcodes=[0, None])
        assert report.dead_ranks == (0,)

    def test_all_arrived_alive_is_ok(self):
        report = classify(2, missing_ranks=(), exitcodes=[None, None])
        assert report.ok

    def test_exitcode_length_checked(self):
        with pytest.raises(ValueError):
            classify(3, missing_ranks=(), exitcodes=[None])

    def test_describe_names_states(self):
        report = classify(2, missing_ranks=(1,), exitcodes=[None, 13])
        text = report.describe()
        assert "worker-0: healthy" in text
        assert "worker-1: dead (exit 13)" in text


class TestRecoveryPolicy:
    def test_defaults_valid(self):
        policy = RecoveryPolicy()
        assert policy.max_retries == 2
        assert policy.redistribute

    def test_backoff_is_exponential(self):
        policy = RecoveryPolicy(backoff_base_s=0.1, backoff_factor=2.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(min_workers=0)

    def test_rides_on_hcc_config(self):
        cfg = HCCConfig(recovery=RecoveryPolicy(max_retries=5))
        assert cfg.recovery.max_retries == 5
        assert HCCConfig().recovery is None


class TestDecide:
    def _dead(self, rank, n):
        workers = tuple(
            WorkerHealth(r, WorkerState.DEAD if r == rank else WorkerState.HEALTHY,
                         1 if r == rank else None)
            for r in range(n)
        )
        return HealthReport(workers)

    def _stragglers(self, ranks, n):
        workers = tuple(
            WorkerHealth(
                r,
                WorkerState.STRAGGLING if r in ranks else WorkerState.HEALTHY,
            )
            for r in range(n)
        )
        return HealthReport(workers)

    def test_transient_failure_retries_until_budget(self):
        policy = RecoveryPolicy(max_retries=2)
        report = self._stragglers({1}, 3)
        assert decide(policy, report, 0, 3) is RecoveryAction.RETRY
        assert decide(policy, report, 1, 3) is RecoveryAction.RETRY
        assert decide(policy, report, 2, 3) is RecoveryAction.ABORT

    def test_death_redistributes_when_enough_survive(self):
        policy = RecoveryPolicy(min_workers=2)
        assert decide(policy, self._dead(0, 3), 0, 3) is RecoveryAction.REDISTRIBUTE
        assert decide(policy, self._dead(0, 2), 0, 2) is RecoveryAction.ABORT

    def test_death_aborts_when_redistribution_disabled(self):
        policy = RecoveryPolicy(redistribute=False)
        assert decide(policy, self._dead(1, 3), 0, 3) is RecoveryAction.ABORT

    def test_training_aborted_carries_context(self):
        err = TrainingAborted(4, "boom", checkpoint_path="run/ckpt")
        assert err.epoch == 4
        assert "epoch 4" in str(err)
        assert "run/ckpt" in str(err)
        bare = TrainingAborted(2, "boom")
        assert "no checkpoint path" in str(bare)


class TestRedistribute:
    def test_survivors_keep_relative_proportions(self):
        plan = PartitionPlan("dp1", (0.2, 0.3, 0.5))
        degraded = redistribute(plan, {2})
        assert degraded.n_workers == 2
        assert degraded.fractions[0] == pytest.approx(0.4)
        assert degraded.fractions[1] == pytest.approx(0.6)
        assert sum(degraded.fractions) == pytest.approx(1.0)
        assert degraded.strategy == "degraded"

    def test_predicted_times_scale_with_growth(self):
        plan = PartitionPlan("dp1", (0.5, 0.5), (1.0, 1.0))
        degraded = redistribute(plan, {1})
        # the survivor absorbs double the work at the same rate
        assert degraded.predicted_times[0] == pytest.approx(2.0)

    def test_no_dead_returns_same_plan(self):
        plan = PartitionPlan("dp0", (0.5, 0.5))
        assert redistribute(plan, set()) is plan

    def test_unknown_rank_rejected(self):
        with pytest.raises(ValueError, match="not in the plan"):
            redistribute(PartitionPlan("dp0", (0.5, 0.5)), {5})

    def test_no_survivors_rejected(self):
        with pytest.raises(ValueError, match="no surviving"):
            redistribute(PartitionPlan("dp0", (1.0,)), {0})


class TestResilienceSummary:
    def test_clean_until_a_failure_lands(self):
        summary = ResilienceSummary()
        assert summary.clean
        summary.failures.append("epoch 1: WorkerSyncError -> retry")
        assert not summary.clean

    def test_describe_mentions_resume(self):
        summary = ResilienceSummary(retries=1, resumed_from_epoch=3)
        text = summary.describe()
        assert "retries=1" in text
        assert "resumed_from=3" in text
