"""Unit tests for the Table 3 dataset registry."""

import pytest

from repro.data.datasets import (
    DATASETS,
    DatasetSpec,
    MOVIELENS_20M,
    NETFLIX,
    R1_STAR,
    YAHOO_R1,
    YAHOO_R2,
    get_dataset,
)


class TestTable3Values:
    """The registry must carry the paper's exact Table 3 statistics."""

    def test_netflix(self):
        assert (NETFLIX.m, NETFLIX.n, NETFLIX.nnz) == (480_190, 17_771, 99_072_112)
        assert NETFLIX.reg == 0.01

    def test_r1(self):
        assert (YAHOO_R1.m, YAHOO_R1.n, YAHOO_R1.nnz) == (1_948_883, 1_101_750, 115_579_437)
        assert YAHOO_R1.reg == 1.0

    def test_r1_star(self):
        assert R1_STAR.nnz == 199_999_997
        assert (R1_STAR.m, R1_STAR.n) == (YAHOO_R1.m, YAHOO_R1.n)

    def test_r2(self):
        assert (YAHOO_R2.m, YAHOO_R2.n, YAHOO_R2.nnz) == (1_000_000, 136_736, 383_838_609)

    def test_movielens(self):
        assert (MOVIELENS_20M.m, MOVIELENS_20M.n, MOVIELENS_20M.nnz) == (
            138_494, 131_263, 20_000_260,
        )

    def test_learning_rate(self):
        for spec in DATASETS.values():
            assert spec.learning_rate == 0.005  # gamma in Table 3's caption

    def test_all_row_dominant(self):
        # every Table 3 dataset has m > n, so the row grid + Q-only apply
        for spec in DATASETS.values():
            assert spec.rows_dominate


class TestDerivedProperties:
    def test_reuse_ratio_ordering(self):
        # section 3.4: R1 and MovieLens have low reuse, Netflix the highest
        assert YAHOO_R1.reuse_ratio < MOVIELENS_20M.reuse_ratio < NETFLIX.reuse_ratio

    def test_movielens_below_comm_bound(self):
        # the paper's nnz/(m+n) < 1e3 criterion flags MovieLens
        assert MOVIELENS_20M.reuse_ratio < 1e3

    def test_density(self):
        assert NETFLIX.density == pytest.approx(
            99_072_112 / (480_190 * 17_771)
        )


class TestScaling:
    def test_scaled_preserves_density(self):
        small = NETFLIX.scaled(50_000)
        assert small.density == pytest.approx(NETFLIX.density, rel=0.15)

    def test_scaled_caps_nnz(self):
        small = NETFLIX.scaled(50_000)
        assert small.nnz <= 50_000

    def test_scaled_noop_when_bigger(self):
        assert NETFLIX.scaled(NETFLIX.nnz * 2) is NETFLIX

    def test_scaled_name_tagged(self):
        assert NETFLIX.scaled(1000).name == "Netflix@1000"

    def test_scaled_keeps_hyperparams(self):
        small = YAHOO_R1.scaled(10_000)
        assert small.reg == YAHOO_R1.reg
        assert small.rating_max == 100.0

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            NETFLIX.scaled(0)


class TestGeneration:
    def test_generate_matches_spec(self):
        small = NETFLIX.scaled(5000)
        r = small.generate(seed=0)
        assert r.shape == (small.m, small.n)
        assert r.nnz == small.nnz

    def test_generate_respects_scale(self):
        small = YAHOO_R1.scaled(5000)
        r = small.generate(seed=0)
        assert r.vals.max() <= 100.0
        assert r.vals.min() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", m=0, n=5, nnz=3)
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", m=2, n=2, nnz=5)


class TestLookup:
    def test_get_by_name(self):
        assert get_dataset("Netflix") is NETFLIX
        assert get_dataset("netflix") is NETFLIX
        assert get_dataset("R1*") is R1_STAR

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("imaginary")
