"""Loadgen tier: deterministic percentile math and SLO verdicts.

The clock and sleep are injectable, so these tests script exact
request timings and assert the report's p50/p99/QPS to the digit; the
real-clock paths are smoke-checked for shape only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.loadgen import SLO, LoadGenConfig, LoadReport, run_loadgen
from repro.serving.scorer import Scorer

from tests.test_serving_topk import store_for


class ScriptedClock:
    """Returns pre-computed instants: run-start, (start, end) per request, run-end."""

    def __init__(self, durations_s):
        times = [0.0]
        t = 0.0
        for d in durations_s:
            times.extend([t, t + d])
            t += d
        times.append(t)
        self.times = times
        self.calls = 0

    def __call__(self) -> float:
        t = self.times[self.calls]
        self.calls += 1
        return t


def scorer_for_tests():
    return Scorer(store_for(np.ones((10, 3)), np.ones((3, 6))))


class TestClosedLoopDeterminism:
    def test_exact_percentiles_and_qps(self):
        durations = [0.005, 0.001, 0.009, 0.003]
        clock = ScriptedClock(durations)
        config = LoadGenConfig(requests=4, batch_size=2, k=3,
                               mode="closed", concurrency=1, seed=0)
        report = run_loadgen(scorer_for_tests(), config, clock=clock)

        latencies_ms = [d * 1e3 for d in durations]
        assert report.requests == 4
        assert report.latencies_ms == pytest.approx(tuple(latencies_ms))
        assert report.p50_ms == pytest.approx(np.percentile(latencies_ms, 50))
        assert report.p99_ms == pytest.approx(np.percentile(latencies_ms, 99))
        assert report.elapsed_s == pytest.approx(sum(durations))
        assert report.qps == pytest.approx(4 / sum(durations))
        assert report.versions == (1,)
        assert clock.calls == len(clock.times)

    def test_multi_client_covers_budget(self):
        config = LoadGenConfig(requests=24, batch_size=2, k=3,
                               mode="closed", concurrency=3, seed=1)
        report = run_loadgen(scorer_for_tests(), config)
        assert report.requests == 24
        assert report.concurrency == 3
        assert all(lat >= 0 for lat in report.latencies_ms)
        assert report.qps > 0

    def test_reader_errors_propagate(self):
        scorer = scorer_for_tests()
        config = LoadGenConfig(requests=4, mode="closed", concurrency=2)
        scorer.store._snapshot = None   # sabotage: snapshot() now raises
        with pytest.raises(Exception, match="no model loaded"):
            run_loadgen(scorer, config)


class TestPoissonDeterminism:
    def test_gaps_follow_seeded_exponential(self):
        sleeps: list[float] = []
        config = LoadGenConfig(requests=5, batch_size=2, k=3,
                               mode="poisson", rate_qps=100.0, seed=42)
        durations = [0.002] * 5
        report = run_loadgen(
            scorer_for_tests(), config,
            clock=ScriptedClock(durations), sleep=sleeps.append,
        )
        expected = np.random.default_rng(42).exponential(1 / 100.0, size=5)
        assert sleeps == pytest.approx([float(g) for g in expected])
        assert report.mode == "poisson"
        assert report.concurrency == 1
        assert report.latencies_ms == pytest.approx((2.0,) * 5)
        assert report.p50_ms == pytest.approx(2.0)


class TestSLO:
    def test_undeclared_is_unchecked(self):
        slo = SLO()
        assert not slo.declared
        assert slo.violations(1e9, 1e9, 0.0) == []

    def test_each_target_violates_independently(self):
        slo = SLO(p50_ms=1.0, p99_ms=5.0, min_qps=100.0)
        assert slo.declared
        assert slo.violations(0.5, 4.0, 200.0) == []
        assert len(slo.violations(2.0, 4.0, 200.0)) == 1
        assert len(slo.violations(2.0, 9.0, 50.0)) == 3
        assert "p99" in slo.violations(0.5, 9.0, 200.0)[0]

    def test_report_check_slo_and_render(self):
        report = LoadReport(mode="closed", requests=2, batch_size=1, k=1,
                            concurrency=1, latencies_ms=(1.0, 3.0),
                            elapsed_s=0.004, versions=(1,))
        assert report.check_slo(SLO(p50_ms=10.0)) == []
        violations = report.check_slo(SLO(min_qps=1e6))
        assert len(violations) == 1
        assert "SLO VIOLATED" in report.render(SLO(min_qps=1e6))
        assert "all declared targets met" in report.render(SLO(p50_ms=10.0))
        assert "SLO" not in report.render()       # undeclared: no verdict line
        assert "SLO" not in report.render(SLO())

    def test_to_dict_round_trip(self):
        slo = SLO(p99_ms=50.0)
        assert slo.to_dict() == {"p50_ms": None, "p99_ms": 50.0,
                                 "min_qps": None}


class TestConfigValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            LoadGenConfig(mode="open")

    @pytest.mark.parametrize(
        "field", ["requests", "batch_size", "k", "concurrency"]
    )
    def test_non_positive_counts(self, field):
        with pytest.raises(ValueError, match=field):
            LoadGenConfig(**{field: 0})

    def test_non_positive_rate(self):
        with pytest.raises(ValueError, match="rate_qps"):
            LoadGenConfig(rate_qps=0.0)
