"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs.exporters import (
    jsonl_lines,
    prometheus_text,
    read_metrics_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("updates_total")
        c.inc(5)
        c.inc(3)
        assert c.value() == 8

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("updates_total")
        c.inc(5, worker="w0")
        c.inc(7, worker="w1")
        assert c.value(worker="w0") == 5
        assert c.value(worker="w1") == 7
        assert c.series_count() == 2

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("updates_total").inc(-1)

    def test_label_order_does_not_matter(self, registry):
        c = registry.counter("c")
        c.inc(1, a=1, b=2)
        c.inc(1, b=2, a=1)
        assert c.value(a=1, b=2) == 2


class TestGauge:
    def test_set_overwrites(self, registry):
        g = registry.gauge("epoch_rmse")
        g.set(1.2, epoch=0)
        g.set(1.1, epoch=0)
        assert g.value(epoch=0) == pytest.approx(1.1)


class TestHistogram:
    def test_count_sum_mean(self, registry):
        h = registry.histogram("merge_seconds")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(0.06)
        assert h.mean() == pytest.approx(0.02)

    def test_bucket_samples_are_cumulative(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        by_le = {
            dict(s.labels)["le"]: s.value
            for s in h.samples()
            if s.name == "h_bucket"
        }
        assert by_le["1"] == 1
        assert by_le["2"] == 2
        assert by_le["+Inf"] == 3

    def test_inf_bucket_appended_when_missing(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        assert h.buckets[-1] == float("inf")

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_metric(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name!")

    def test_contains_and_get(self, registry):
        registry.gauge("g")
        assert "g" in registry
        assert registry.get("g").kind == "gauge"
        assert "missing" not in registry

    def test_events_are_ordered_and_stamped(self, registry):
        registry.event("epoch", epoch=0)
        registry.event("epoch", epoch=1)
        events = registry.events
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["t"] <= events[1]["t"]
        assert events[1]["epoch"] == 1

    def test_event_field_named_name_allowed(self, registry):
        """The probe exporter logs a field literally called ``name``."""
        rec = registry.event("probe", name="bandwidth")
        assert rec["name"] == "bandwidth"


class TestJsonlExport:
    def test_round_trip(self, registry, tmp_path):
        registry.counter("updates_total").inc(10, worker="w0")
        registry.event("epoch", epoch=0, rmse=1.5)
        path = tmp_path / "m.jsonl"
        n = write_metrics_jsonl(registry, path)
        assert n == 2
        events, samples = read_metrics_jsonl(path)
        assert events[0]["event"] == "epoch"
        assert samples[0]["name"] == "updates_total"
        assert samples[0]["labels"] == {"worker": "w0"}
        assert samples[0]["value"] == 10

    def test_every_line_is_json(self, registry, tmp_path):
        registry.histogram("h").observe(0.1)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(registry, path)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_lines_order_events_first(self, registry):
        registry.counter("c").inc()
        registry.event("e")
        lines = [json.loads(line) for line in jsonl_lines(registry)]
        assert lines[0]["type"] == "event"
        assert lines[-1]["type"] == "sample"


class TestPrometheusExport:
    def test_help_type_and_value_lines(self, registry):
        registry.counter("updates_total", "SGD updates").inc(3, worker="w0")
        text = prometheus_text(registry)
        assert "# HELP updates_total SGD updates" in text
        assert "# TYPE updates_total counter" in text
        assert 'updates_total{worker="w0"} 3' in text

    def test_histogram_renders_buckets(self, registry):
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(registry)
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text

    def test_label_values_escaped_per_exposition_spec(self, registry):
        # backslash, double-quote and newline in a label value must be
        # escaped or the exposition text is unparseable
        registry.counter("c").inc(1, path='dir\\file "x"\nnext')
        text = prometheus_text(registry)
        assert r'c{path="dir\\file \"x\"\nnext"} 1' in text
        assert "\n".join(text.splitlines()) + "\n" == text  # no raw breaks mid-line

    def test_backslash_escaped_before_quote(self, registry):
        # a value ending in backslash-quote must not collapse into an
        # escaped quote (escape order matters)
        registry.gauge("g").set(1, v='\\"')
        assert r'g{v="\\\""} 1' in prometheus_text(registry)

    def test_help_text_escapes_newline_and_backslash(self, registry):
        registry.counter("c", "line1\nline2\\tail").inc()
        text = prometheus_text(registry)
        assert r"# HELP c line1\nline2\\tail" in text

    def test_clean_labels_unchanged(self, registry):
        registry.counter("c").inc(2, worker="w0")
        assert 'c{worker="w0"} 2' in prometheus_text(registry)

    def test_write_prometheus(self, registry, tmp_path):
        registry.gauge("g").set(2.5)
        path = tmp_path / "m.prom"
        nbytes = write_prometheus(registry, path)
        assert nbytes == len(path.read_bytes())
        assert "g 2.5" in path.read_text()
