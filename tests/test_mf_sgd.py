"""Unit tests for the SerialSGD and HogwildSGD trainers."""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.mf.kernels import ConflictPolicy
from repro.mf.sgd import HogwildSGD, SerialSGD, TrainHistory


class TestTrainHistory:
    def test_record_and_final(self):
        h = TrainHistory()
        h.record(1.0, 1.1)
        h.record(0.8, 0.9)
        assert h.epochs == 2
        assert h.final_rmse == 0.8
        assert h.rmse == [1.0, 0.8]

    def test_final_requires_epochs(self):
        with pytest.raises(ValueError):
            TrainHistory().final_rmse

    def test_converged_detection(self):
        h = TrainHistory()
        for v in [1.0, 0.5, 0.4, 0.399, 0.3985, 0.3984]:
            h.record(v, v)
        assert h.converged(tol=0.01)
        assert not h.converged(tol=1e-6)

    def test_converged_needs_window(self):
        h = TrainHistory()
        h.record(1.0, 1.0)
        assert not h.converged()


class TestSerialSGD:
    def test_converges_on_tiny(self, tiny_ratings):
        s = SerialSGD(k=4, lr=0.02, reg=0.01, seed=0)
        s.fit(tiny_ratings, epochs=8)
        assert s.history.rmse[-1] < s.history.rmse[0]

    def test_model_available(self, tiny_ratings):
        s = SerialSGD(k=4, seed=0)
        model = s.fit(tiny_ratings, epochs=2)
        assert model is s.model
        assert model.k == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SerialSGD(k=0)


class TestHogwildSGD:
    def test_monotone_convergence(self, small_ratings):
        h = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=0)
        h.fit(small_ratings, epochs=8)
        r = h.history.rmse
        assert r[-1] < r[0]
        # no epoch should blow the loss up by more than a hair
        assert all(b < a * 1.05 for a, b in zip(r, r[1:]))

    def test_last_write_policy_converges(self, small_ratings):
        h = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=0,
                       policy=ConflictPolicy.LAST_WRITE)
        h.fit(small_ratings, epochs=8)
        assert h.history.rmse[-1] < h.history.rmse[0]

    def test_early_stop(self, small_ratings):
        h = HogwildSGD(k=8, lr=0.02, reg=0.01, seed=0)
        h.fit(small_ratings, epochs=200, early_stop_tol=0.05)
        assert h.history.epochs < 200

    def test_eval_data_used(self, small_ratings):
        train, test = small_ratings.split(0.2, seed=0)
        h = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=0)
        h.fit(train, epochs=5, eval_data=test)
        assert len(h.history.rmse) == 5

    def test_deterministic(self, small_ratings):
        a = HogwildSGD(k=8, lr=0.01, seed=4)
        b = HogwildSGD(k=8, lr=0.01, seed=4)
        a.fit(small_ratings, epochs=3)
        b.fit(small_ratings, epochs=3)
        assert a.history.rmse == b.history.rmse

    def test_seed_matters(self, small_ratings):
        a = HogwildSGD(k=8, lr=0.01, seed=4)
        b = HogwildSGD(k=8, lr=0.01, seed=5)
        a.fit(small_ratings, epochs=3)
        b.fit(small_ratings, epochs=3)
        assert a.history.rmse != b.history.rmse

    def test_regularization_limits_norms(self, small_ratings):
        free = HogwildSGD(k=8, lr=0.01, reg=0.0, seed=0)
        reg = HogwildSGD(k=8, lr=0.01, reg=0.5, seed=0)
        free.fit(small_ratings, epochs=10)
        reg.fit(small_ratings, epochs=10)
        assert np.linalg.norm(reg.model.P) < np.linalg.norm(free.model.P)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            HogwildSGD(k=4, batch_size=0)

    def test_yahoo_scale_converges(self):
        """The 0-100 rating scale must also train stably."""
        from repro.data.datasets import YAHOO_R1

        r = YAHOO_R1.scaled(8000).generate(seed=2)
        h = HogwildSGD(k=8, lr=0.002, reg=1.0, seed=0)
        h.fit(r, epochs=8)
        assert h.history.rmse[-1] < h.history.rmse[0]
        assert np.isfinite(h.history.rmse[-1])
