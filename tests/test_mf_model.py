"""Unit tests for the MFModel factor container."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel


class TestConstruction:
    def test_shapes(self):
        m = MFModel(np.zeros((4, 3)), np.zeros((3, 5)))
        assert (m.m, m.n, m.k) == (4, 5, 3)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            MFModel(np.zeros((4, 3)), np.zeros((2, 5)))

    def test_dtype_coerced(self):
        m = MFModel(np.zeros((2, 2), dtype=np.float64), np.zeros((2, 2)))
        assert m.P.dtype == np.float32
        assert m.Q.dtype == np.float32

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            MFModel(np.zeros(4), np.zeros((1, 4)))

    def test_no_copy_for_contiguous_float32(self):
        """Workers rely on MFModel aliasing the shared P buffer."""
        p = np.zeros((4, 3), dtype=np.float32)
        q = np.zeros((3, 5), dtype=np.float32)
        m = MFModel(p, q)
        assert m.P is p
        assert m.Q is q

    def test_feature_bytes(self):
        m = MFModel(np.zeros((4, 3), dtype=np.float32), np.zeros((3, 5), dtype=np.float32))
        assert m.feature_bytes == 4 * (4 * 3 + 3 * 5)


class TestInit:
    def test_initial_predictions_near_mean(self):
        m = MFModel.init(200, 100, 16, mean_rating=3.5, seed=0)
        rows = np.arange(200).repeat(2) % 200
        cols = np.arange(400) % 100
        preds = m.predict(rows, cols)
        assert abs(preds.mean() - 3.5) < 0.5

    def test_deterministic(self):
        a = MFModel.init(10, 10, 4, seed=3)
        b = MFModel.init(10, 10, 4, seed=3)
        np.testing.assert_array_equal(a.P, b.P)

    def test_init_for_uses_dataset_mean(self, tiny_ratings):
        m = MFModel.init_for(tiny_ratings, 4, seed=0)
        pred = m.predict(tiny_ratings.rows, tiny_ratings.cols)
        assert abs(pred.mean() - tiny_ratings.mean_rating()) < 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MFModel.init(10, 10, 0)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            MFModel.init(10, 10, 4, mean_rating=0.0)


class TestPredictAndRmse:
    def test_predict_matches_matmul(self):
        m = MFModel.init(6, 5, 3, seed=1)
        dense = m.predict_dense()
        rows = np.array([0, 2, 5])
        cols = np.array([1, 4, 0])
        np.testing.assert_allclose(m.predict(rows, cols), dense[rows, cols], rtol=1e-5)

    def test_rmse_zero_for_exact_factors(self):
        p = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        q = np.array([[2.0, 3.0], [4.0, 5.0]], dtype=np.float32)
        m = MFModel(p, q)
        r = RatingMatrix.from_dense(p @ q)
        assert m.rmse(r) == pytest.approx(0.0, abs=1e-6)

    def test_rmse_known_value(self):
        m = MFModel(np.ones((1, 1), dtype=np.float32), np.ones((1, 1), dtype=np.float32))
        r = RatingMatrix(1, 1, [0], [0], [3.0])  # prediction 1.0, error 2.0
        assert m.rmse(r) == pytest.approx(2.0)

    def test_rmse_empty_ratings(self):
        m = MFModel.init(3, 3, 2)
        assert m.rmse(RatingMatrix(3, 3, [], [], [])) == 0.0

    def test_copy_is_deep(self):
        m = MFModel.init(3, 3, 2, seed=0)
        c = m.copy()
        c.P[0, 0] = 99.0
        assert m.P[0, 0] != 99.0
