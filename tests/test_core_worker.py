"""Unit tests for WorkerRuntime (the per-worker numeric executor)."""

import numpy as np
import pytest

from repro.core.worker import WorkerRuntime
from repro.data.grid import partition_rows
from repro.hardware.processor import Processor
from repro.hardware.specs import RTX_2080, XEON_6242
from repro.mf.kernels import ConflictPolicy
from repro.mf.model import MFModel


@pytest.fixture
def setup(small_ratings):
    data = small_ratings.shuffle(0)
    assignments = partition_rows(data, [0.5, 0.5])
    model = MFModel.init_for(data, 8, seed=0)
    return data, assignments, model


class TestPolicySelection:
    def test_cpu_gets_atomic(self, setup):
        data, assignments, _ = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data)
        assert rt.policy is ConflictPolicy.ATOMIC

    def test_gpu_gets_last_write(self, setup):
        data, assignments, _ = setup
        rt = WorkerRuntime(0, Processor(RTX_2080), assignments[0], data)
        assert rt.policy is ConflictPolicy.LAST_WRITE


class TestRunEpoch:
    def test_updates_exclusive_p_rows_in_place(self, setup):
        data, assignments, model = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data, seed=1)
        p_before = model.P.copy()
        q = model.Q.copy()
        rt.run_epoch(model.P, q, lr=0.01, reg=0.01)
        own_rows = np.unique(data.rows[assignments[0].entries])
        other = np.setdiff1d(np.arange(data.m), own_rows)
        # exclusive rows changed in place...
        assert not np.allclose(model.P[own_rows], p_before[own_rows])
        # ...but nobody else's rows were touched
        np.testing.assert_array_equal(model.P[other], p_before[other])

    def test_returns_updated_q(self, setup):
        data, assignments, model = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data, seed=1)
        q = model.Q.copy()
        q_new, mse = rt.run_epoch(model.P, q, lr=0.01, reg=0.01)
        assert mse > 0
        assert not np.allclose(q_new, model.Q)

    def test_reduces_local_loss(self, setup):
        data, assignments, model = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data, seed=1)
        local = rt.data
        before = model.rmse(local)
        q = model.Q.copy()
        for _ in range(3):
            q, _ = rt.run_epoch(model.P, q, lr=0.01, reg=0.01)
        after = MFModel(model.P, q).rmse(local)
        assert after < before

    def test_counts_updates(self, setup):
        data, assignments, model = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data)
        rt.run_epoch(model.P, model.Q.copy(), 0.01, 0.01)
        assert rt.updates_applied == rt.nnz

    def test_empty_assignment(self, setup):
        data, _, model = setup
        empty = partition_rows(data, [0.0, 1.0])[0]
        rt = WorkerRuntime(0, Processor(XEON_6242), empty, data)
        q = model.Q.copy()
        q_out, mse = rt.run_epoch(model.P, q, 0.01, 0.01)
        assert mse == 0.0
        np.testing.assert_array_equal(q_out, q)

    def test_dtype_enforced(self, setup):
        data, assignments, model = setup
        rt = WorkerRuntime(0, Processor(XEON_6242), assignments[0], data)
        with pytest.raises(TypeError, match="float32"):
            rt.run_epoch(model.P.astype(np.float64), model.Q.copy(), 0.01, 0.01)

    def test_data_block_sorted(self, setup):
        data, assignments, _ = setup
        rt = WorkerRuntime(0, Processor(RTX_2080), assignments[0], data)
        keys = rt.data.rows * rt.data.n + rt.data.cols
        assert np.all(np.diff(keys) >= 0)
