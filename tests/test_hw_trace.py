"""Unit tests for Chrome trace-event export."""

import json

import pytest

from repro.hardware.timeline import Phase, Timeline
from repro.hardware.trace import export_chrome_trace, timeline_to_trace_events


@pytest.fixture
def timeline():
    tl = Timeline()
    tl.add("gpu0", Phase.PULL, 0.0, 0.1, epoch=0)
    tl.add("gpu0", Phase.COMPUTE, 0.1, 0.9, epoch=0)
    tl.add("gpu0", Phase.PUSH, 0.9, 1.0, epoch=0)
    tl.add("server", Phase.SYNC, 1.0, 1.05, epoch=0)
    return tl


class TestTraceEvents:
    def test_one_x_event_per_span(self, timeline):
        events = timeline_to_trace_events(timeline)
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == 4

    def test_thread_metadata_per_worker(self, timeline):
        events = timeline_to_trace_events(timeline)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"gpu0", "server"}

    def test_timestamps_in_microseconds(self, timeline):
        events = timeline_to_trace_events(timeline)
        compute = [e for e in events if e.get("name") == "computing"][0]
        assert compute["ts"] == pytest.approx(0.1 * 1e6)
        assert compute["dur"] == pytest.approx(0.8 * 1e6)

    def test_time_unit_scaling(self, timeline):
        events = timeline_to_trace_events(timeline, time_unit=1e-3)
        compute = [e for e in events if e.get("name") == "computing"][0]
        assert compute["ts"] == pytest.approx(0.1 * 1e3)

    def test_invalid_time_unit(self, timeline):
        with pytest.raises(ValueError):
            timeline_to_trace_events(timeline, time_unit=0)

    def test_epoch_in_category(self, timeline):
        events = timeline_to_trace_events(timeline)
        cats = {e["cat"] for e in events if e["ph"] == "X"}
        assert cats == {"epoch-0"}


class TestExport:
    def test_writes_valid_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(timeline, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["displayTimeUnit"] == "ms"

    def test_framework_timeline_exports(self, tmp_path):
        from repro.core.config import HCCConfig
        from repro.core.framework import HCCMF
        from repro.data.datasets import NETFLIX
        from repro.hardware.topology import paper_workstation

        res = HCCMF(paper_workstation(16), NETFLIX, HCCConfig(k=128, epochs=2)).train()
        count = export_chrome_trace(res.timeline, tmp_path / "t.json")
        assert count > 10
