"""Unit tests for Chrome trace-event export."""

import json

import pytest

from repro.hardware.timeline import Phase, Timeline
from repro.hardware.trace import (
    export_chrome_trace,
    import_chrome_trace,
    timeline_from_trace_events,
    timeline_to_trace_events,
)


@pytest.fixture
def timeline():
    tl = Timeline()
    tl.add("gpu0", Phase.PULL, 0.0, 0.1, epoch=0)
    tl.add("gpu0", Phase.COMPUTE, 0.1, 0.9, epoch=0)
    tl.add("gpu0", Phase.PUSH, 0.9, 1.0, epoch=0)
    tl.add("server", Phase.SYNC, 1.0, 1.05, epoch=0)
    return tl


class TestTraceEvents:
    def test_one_x_event_per_span(self, timeline):
        events = timeline_to_trace_events(timeline)
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == 4

    def test_thread_metadata_per_worker(self, timeline):
        events = timeline_to_trace_events(timeline)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"gpu0", "server"}

    def test_timestamps_in_microseconds(self, timeline):
        events = timeline_to_trace_events(timeline)
        compute = [e for e in events if e.get("name") == "computing"][0]
        assert compute["ts"] == pytest.approx(0.1 * 1e6)
        assert compute["dur"] == pytest.approx(0.8 * 1e6)

    def test_time_unit_scaling(self, timeline):
        events = timeline_to_trace_events(timeline, time_unit=1e-3)
        compute = [e for e in events if e.get("name") == "computing"][0]
        assert compute["ts"] == pytest.approx(0.1 * 1e3)

    def test_invalid_time_unit(self, timeline):
        with pytest.raises(ValueError):
            timeline_to_trace_events(timeline, time_unit=0)

    def test_epoch_in_category(self, timeline):
        events = timeline_to_trace_events(timeline)
        cats = {e["cat"] for e in events if e["ph"] == "X"}
        assert cats == {"epoch-0"}

    def test_multi_epoch_categories(self):
        tl = Timeline()
        tl.add("w", Phase.COMPUTE, 0.0, 1.0, epoch=0)
        tl.add("w", Phase.COMPUTE, 1.0, 2.0, epoch=1)
        tl.add("w", Phase.COMPUTE, 2.0, 3.0, epoch=2)
        cats = {e["cat"] for e in timeline_to_trace_events(tl) if e["ph"] == "X"}
        assert cats == {"epoch-0", "epoch-1", "epoch-2"}

    def test_empty_timeline_exports_no_events(self, tmp_path):
        path = tmp_path / "empty.json"
        count = export_chrome_trace(Timeline(), path)
        assert count == 0
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_millisecond_time_unit(self):
        tl = Timeline()
        tl.add("w", Phase.COMPUTE, 100.0, 900.0, epoch=0)  # ms
        events = timeline_to_trace_events(tl, time_unit=1e-3)
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["ts"] == pytest.approx(0.1 * 1e6)
        assert span["dur"] == pytest.approx(0.8 * 1e6)

    def test_unknown_phase_gets_default_color(self):
        """Real-run recorders may emit span kinds the color table does
        not know; they must export with a fallback cname, not raise."""
        tl = Timeline()
        tl.add("w", "speculative-prefetch", 0.0, 1.0, epoch=0)
        events = timeline_to_trace_events(tl)
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["name"] == "speculative-prefetch"
        assert span["cname"] == "generic_work"


class TestImport:
    def test_round_trip_preserves_spans(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(timeline, path)
        back = import_chrome_trace(path)
        assert len(back) == len(timeline)
        assert back.workers() == timeline.workers()
        orig = timeline.spans[0]
        got = back.spans[0]
        assert (got.worker, got.phase, got.epoch) == (
            orig.worker,
            orig.phase,
            orig.epoch,
        )
        assert got.start == pytest.approx(orig.start)
        assert got.end == pytest.approx(orig.end)

    def test_full_round_trip_reconstructs_equivalent_timeline(self, tmp_path):
        """export_chrome_trace -> import_chrome_trace must reconstruct
        every span's worker, phase, epoch, attempt and duration."""
        tl = Timeline()
        tl.add("worker-0", Phase.PULL, 0.00, 0.05, epoch=0)
        tl.add("worker-0", Phase.COMPUTE, 0.05, 0.80, epoch=0)
        tl.add("worker-0", Phase.PUSH, 0.80, 0.90, epoch=0)
        tl.add("worker-1", Phase.BARRIER, 0.00, 0.02, epoch=0)
        tl.add("worker-1", Phase.COMPUTE, 0.02, 0.70, epoch=0)
        tl.add("server", Phase.SYNC, 0.90, 0.95, epoch=0)
        tl.add("server", Phase.EVAL, 0.95, 1.00, epoch=0)
        tl.add("worker-0", Phase.COMPUTE, 1.00, 1.60, epoch=1, attempt=1)
        path = tmp_path / "trace.json"
        export_chrome_trace(tl, path)
        back = import_chrome_trace(path)

        def signature(timeline):
            return sorted(
                (s.worker, s.phase.value, s.epoch, s.attempt,
                 round(s.start, 9), round(s.duration, 9))
                for s in timeline.spans
            )

        assert signature(back) == signature(tl)
        assert back.workers() == tl.workers()
        for worker in tl.workers():
            got = back.phase_totals(worker)
            for phase, total in tl.phase_totals(worker).items():
                assert got[phase] == pytest.approx(total)

    def test_attempt_tag_survives_round_trip(self, tmp_path):
        tl = Timeline()
        tl.add("w", Phase.COMPUTE, 0.0, 1.0, epoch=0, attempt=2)
        path = tmp_path / "trace.json"
        export_chrome_trace(tl, path)
        back = import_chrome_trace(path)
        assert back.spans[0].attempt == 2

    def test_legacy_trace_without_attempt_defaults_to_zero(self):
        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "w"}},
            {"name": "pull", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 1e6, "args": {"epoch": 3}},
        ]
        tl = timeline_from_trace_events(events)
        assert tl.spans[0].epoch == 3
        assert tl.spans[0].attempt == 0

    def test_foreign_slices_skipped(self):
        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "w"}},
            {"name": "pull", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1e6, "args": {"epoch": 0}},
            {"name": "not-a-phase", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1e6, "args": {}},
        ]
        tl = timeline_from_trace_events(events)
        assert len(tl) == 1
        assert tl.spans[0].phase is Phase.PULL

    def test_real_run_trace_round_trips(self, tmp_path):
        """Traces written by an instrumented real run must re-import
        for offline obs-report analysis."""
        from repro.data.datasets import NETFLIX
        from repro.obs import Telemetry
        from repro.parallel.executor import SharedMemoryTrainer

        data = NETFLIX.scaled(3000).generate(seed=7)
        tel = Telemetry()
        SharedMemoryTrainer(data, k=8, n_workers=2, seed=0, telemetry=tel).train(
            epochs=2
        )
        path = tmp_path / "real.json"
        tel.export_chrome_trace(path)
        back = import_chrome_trace(path)
        assert len(back) == len(tel.timeline)
        assert set(back.workers()) == {"worker-0", "worker-1", "server"}


class TestExport:
    def test_writes_valid_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(timeline, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["displayTimeUnit"] == "ms"

    def test_framework_timeline_exports(self, tmp_path):
        from repro.core.config import HCCConfig
        from repro.core.framework import HCCMF
        from repro.data.datasets import NETFLIX
        from repro.hardware.topology import paper_workstation

        res = HCCMF(paper_workstation(16), NETFLIX, HCCConfig(k=128, epochs=2)).train()
        count = export_chrome_trace(res.timeline, tmp_path / "t.json")
        assert count > 10
