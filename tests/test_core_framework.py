"""Unit and integration tests for the HCCMF framework."""

import numpy as np
import pytest

from repro.core.config import (
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)
from repro.core.cost_model import Regime
from repro.core.framework import HCCMF, _without_time_shared
from repro.data.datasets import NETFLIX, YAHOO_R1
from repro.hardware.timeline import Phase
from repro.hardware.topology import paper_workstation


@pytest.fixture
def platform():
    return paper_workstation(16)


@pytest.fixture
def numeric_run(platform, medium_ratings):
    cfg = HCCConfig(k=8, epochs=6, learning_rate=0.01, seed=1)
    hcc = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings)
    return hcc.train()


class TestTimingPlane:
    def test_train_without_ratings(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        assert res.rmse_history == []
        assert res.model is None
        assert res.total_time > 0

    def test_total_time_composition(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        assert res.total_time >= 20 * res.epoch_cost.total

    def test_final_p_push_included_only_for_q_only(self, platform):
        q = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        pq = HCCMF(
            platform, NETFLIX,
            HCCConfig(k=128, epochs=20,
                      comm=CommConfig(transmit=TransmitMode.P_AND_Q)),
        ).train()
        assert q.total_time > 20 * q.epoch_cost.total  # has the P epilogue
        assert pq.total_time == pytest.approx(20 * pq.epoch_cost.total)

    def test_phase_totals_structure(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        assert len(res.phase_totals) == platform.n_workers
        for phases in res.phase_totals.values():
            assert set(phases) == {"pull", "computing", "push", "total"}
            assert phases["total"] >= phases["computing"]

    def test_power_and_utilization(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        assert 0 < res.utilization < 1
        assert res.power == pytest.approx(
            NETFLIX.nnz * 20 / res.total_time, rel=1e-6
        )
        assert sum(res.worker_powers.values()) == pytest.approx(res.power, rel=1e-6)

    def test_timeline_has_sync_lane(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=3)).train()
        assert "server" in res.timeline.workers()
        assert res.timeline.phase_total(Phase.SYNC) > 0

    def test_time_axis_monotone(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=5)).train()
        axis = res.time_axis()
        assert len(axis) == 5
        assert all(b > a for a, b in zip(axis, axis[1:]))

    def test_time_axis_tracks_timeline_spans(self, platform):
        """The axis is derived from per-epoch span ends, not a uniform
        total/epochs smear, and Strategy 1's once-at-the-end P push
        lands on the final epoch only."""
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=3)).train()
        span_ends: dict[int, float] = {}
        for span in res.timeline.spans:
            span_ends[span.epoch] = max(span_ends.get(span.epoch, 0.0), span.end)
        axis = res.time_axis()
        assert axis[0] == pytest.approx(span_ends[0])
        assert axis[1] == pytest.approx(span_ends[1])
        epilogue = res.total_time - 3 * res.epoch_cost.total
        assert epilogue > 0  # Q-only mode has the final P push
        assert axis[2] == pytest.approx(span_ends[2] + epilogue)

    def test_time_axis_extends_beyond_rendered_window(self, platform):
        """Epochs past the timeline's rendered window continue at the
        analytic steady-state epoch cost."""
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=5)).train()
        rendered = max(span.epoch for span in res.timeline.spans)
        assert rendered == 2  # the timeline renders a 3-epoch window
        axis = res.time_axis()
        steady = res.epoch_cost.total
        assert axis[3] - axis[2] == pytest.approx(steady)
        epilogue = res.total_time - 5 * steady
        assert axis[4] - axis[3] == pytest.approx(steady + epilogue)

    def test_streams_drop_special_worker(self, platform):
        hcc = HCCMF(platform, YAHOO_R1, HCCConfig(k=128, comm=CommConfig(streams=4)))
        assert hcc.platform.n_workers == platform.n_workers - 1
        assert all(w.time_share == 1.0 for w in hcc.platform.workers)

    def test_regime_reported(self, platform):
        netflix = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=5)).train()
        r1 = HCCMF(platform, YAHOO_R1, HCCConfig(k=128, epochs=5)).train()
        assert netflix.regime is Regime.COMPUTE_BOUND
        assert r1.regime is Regime.SYNC_BOUND

    def test_epochs_override(self, platform):
        hcc = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20))
        res = hcc.train(epochs=5)
        assert res.epochs == 5

    def test_invalid_epochs(self, platform):
        with pytest.raises(ValueError):
            HCCMF(platform, NETFLIX, HCCConfig(k=128)).train(epochs=0)


class TestNumericPlane:
    def test_converges(self, numeric_run):
        r = numeric_run.rmse_history
        assert len(r) == 6
        assert r[-1] < r[0]

    def test_model_returned(self, numeric_run):
        assert numeric_run.model is not None
        assert numeric_run.final_rmse == numeric_run.rmse_history[-1]

    def test_final_rmse_guard(self, platform):
        res = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=2)).train()
        with pytest.raises(ValueError):
            res.final_rmse

    def test_deterministic(self, platform, medium_ratings):
        cfg = HCCConfig(k=8, epochs=3, learning_rate=0.01, seed=7)
        a = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train()
        b = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train()
        assert a.rmse_history == b.rmse_history

    def test_fp16_wire_still_converges(self, platform, medium_ratings):
        cfg = HCCConfig(k=8, epochs=6, learning_rate=0.01, seed=1,
                        comm=CommConfig(fp16=True))
        res = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train()
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_fp16_close_to_fp32(self, platform, medium_ratings):
        """Strategy 2's claim: FP16 transmission does not hurt accuracy."""
        base = HCCConfig(k=8, epochs=6, learning_rate=0.01, seed=1)
        fp32 = HCCMF(platform, NETFLIX, base, ratings=medium_ratings).train()
        fp16 = HCCMF(platform, NETFLIX, base.with_comm(fp16=True),
                     ratings=medium_ratings).train()
        assert fp16.final_rmse == pytest.approx(fp32.final_rmse, abs=0.02)

    def test_eval_data(self, platform, medium_ratings):
        train, test = medium_ratings.split(0.2, seed=0)
        cfg = HCCConfig(k=8, epochs=4, learning_rate=0.01, seed=1)
        res = HCCMF(platform, NETFLIX, cfg, ratings=train).train(eval_data=test)
        assert len(res.rmse_history) == 4

    def test_column_major_data_transposed(self, platform):
        """A wide (m < n) rating matrix must be handled via transposition."""
        from repro.data.datasets import DatasetSpec

        wide_spec = DatasetSpec(name="wide", m=120, n=3000, nnz=9000)
        wide = wide_spec.generate(seed=0)
        assert wide.m < wide.n
        cfg = HCCConfig(k=8, epochs=3, learning_rate=0.01, seed=0)
        res = HCCMF(platform, wide_spec, cfg, ratings=wide).train()
        assert res.rmse_history[-1] < res.rmse_history[0]


class TestPartitionIntegration:
    def test_plan_strategy_respected(self, platform):
        for strat, expect in [
            (PartitionStrategy.EVEN, "even"),
            (PartitionStrategy.DP0, "dp0"),
            (PartitionStrategy.DP1, "dp1"),
            (PartitionStrategy.DP2, "dp2"),
        ]:
            hcc = HCCMF(platform, NETFLIX, HCCConfig(k=128, partition=strat))
            assert hcc.prepare().strategy == expect

    def test_auto_on_netflix_is_dp1(self, platform):
        hcc = HCCMF(platform, NETFLIX, HCCConfig(k=128))
        assert hcc.prepare().strategy == "dp1"

    def test_without_time_shared_helper(self, platform):
        filtered = _without_time_shared(platform)
        assert filtered.n_workers == platform.n_workers - 1
        for w in filtered.workers:
            assert filtered.bus(w) is platform.bus(w)


class TestSimPlaneTelemetry:
    def test_telemetry_collects_spans_and_metrics(self, platform, medium_ratings):
        from repro.obs import Telemetry

        cfg = HCCConfig(k=8, epochs=3, learning_rate=0.01, seed=1)
        tel = Telemetry()
        HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train(telemetry=tel)
        lanes = tel.timeline.workers()
        assert "server" in lanes
        worker_lanes = [w for w in lanes if w != "server"]
        assert worker_lanes  # one lane per simulated worker
        for worker in worker_lanes:
            totals = tel.timeline.phase_totals(worker)
            assert totals[Phase.PULL] > 0
            assert totals[Phase.COMPUTE] > 0
        assert tel.timeline.phase_total(Phase.SYNC, "server") > 0
        rmse = tel.registry.gauge("epoch_rmse")
        assert rmse.value(epoch=2) > 0

    def test_telemetry_does_not_change_numerics(self, platform, medium_ratings):
        from repro.obs import Telemetry

        cfg = HCCConfig(k=8, epochs=3, learning_rate=0.01, seed=7)
        plain = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train()
        traced = HCCMF(platform, NETFLIX, cfg, ratings=medium_ratings).train(
            telemetry=Telemetry()
        )
        assert traced.rmse_history == plain.rmse_history
