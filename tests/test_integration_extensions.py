"""End-to-end integration of the extension features."""

import numpy as np
import pytest

from repro import HCCConfig, HCCMF, NETFLIX, paper_workstation
from repro.core.autotune import tuned_config
from repro.data.datasets import MOVIELENS_20M


class TestAutotunedTraining:
    def test_autotuned_config_trains_numerically(self):
        """The auto-tuner's winner must plug straight into HCCMF and
        converge (Q-rotate's numeric path included)."""
        data = MOVIELENS_20M.scaled(12_000).generate(seed=3)
        cfg = tuned_config(
            paper_workstation(16), MOVIELENS_20M, epochs=5,
            k=8, learning_rate=0.02, seed=3,
        )
        res = HCCMF(paper_workstation(16), MOVIELENS_20M, cfg, ratings=data).train()
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_autotuned_beats_naive_in_model_time(self):
        from repro.core.config import CommConfig, TransmitMode

        naive = HCCConfig(
            k=128, epochs=20, comm=CommConfig(transmit=TransmitMode.P_AND_Q)
        )
        tuned = tuned_config(paper_workstation(16), MOVIELENS_20M, epochs=20)
        t_naive = HCCMF(paper_workstation(16), MOVIELENS_20M, naive).train().total_time
        t_tuned = HCCMF(paper_workstation(16), MOVIELENS_20M, tuned).train().total_time
        assert t_tuned < 0.5 * t_naive


class TestCheckpointedHCCModel:
    def test_hcc_model_checkpoints_and_ranks(self, tmp_path):
        """A model trained by the framework survives checkpointing and
        still produces sensible recommendations."""
        from repro.core.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
        from repro.mf.evaluation import recommend_top_n

        data = NETFLIX.scaled(12_000).generate(seed=4)
        cfg = HCCConfig(k=8, epochs=5, learning_rate=0.01, seed=4)
        res = HCCMF(paper_workstation(16), NETFLIX, cfg, ratings=data).train()
        save_checkpoint(
            Checkpoint(model=res.model, epoch=5, rmse_history=res.rmse_history),
            tmp_path / "hcc",
        )
        loaded = load_checkpoint(tmp_path / "hcc")
        items, scores = recommend_top_n(loaded.model, 0, n=5)
        assert len(items) == 5
        assert np.all(np.isfinite(scores))

    def test_convergence_diagnostics_on_hcc_curve(self):
        from repro.core.convergence import epochs_to_target, fit_exponential

        data = NETFLIX.scaled(15_000).generate(seed=5)
        cfg = HCCConfig(k=8, epochs=10, learning_rate=0.02, seed=5)
        res = HCCMF(paper_workstation(16), NETFLIX, cfg, ratings=data).train()
        fit = fit_exponential(res.rmse_history)
        assert fit.floor < res.rmse_history[-1]
        target = res.rmse_history[-1] * 1.05
        assert epochs_to_target(res.rmse_history, target) < 10


class TestProfileDrivenConfig:
    def test_profile_recommendations_match_autotuner(self):
        """The dataset profiler's qualitative advice must agree with the
        auto-tuner's quantitative pick on the comm-bound dataset."""
        from repro.core.autotune import autotune
        from repro.data.analysis import profile_spec

        prof = profile_spec(MOVIELENS_20M)
        assert prof["comm_bound"]
        report = autotune(paper_workstation(16), MOVIELENS_20M)
        best = report.best.config.comm
        # comm-bound -> the winner uses an aggressive comm strategy
        assert best.transmit.value in ("q-rotate", "q") and (
            best.fp16 or best.streams > 1 or best.transmit.value == "q-rotate"
        )

    def test_energy_tracks_time_on_same_platform(self):
        """For a fixed platform, a faster configuration costs fewer
        joules (same silicon, less wall time)."""
        from repro.core.config import CommConfig, TransmitMode
        from repro.experiments.energy import energy_of

        plat = paper_workstation(16)
        slow_cfg = HCCConfig(
            k=128, epochs=20, comm=CommConfig(transmit=TransmitMode.P_AND_Q)
        )
        fast_cfg = HCCConfig(k=128, epochs=20)
        slow = HCCMF(plat, MOVIELENS_20M, slow_cfg).train()
        fast = HCCMF(plat, MOVIELENS_20M, fast_cfg).train()
        assert fast.total_time < slow.total_time
        assert energy_of(fast, plat).total_joules < energy_of(slow, plat).total_joules
