"""Unit tests for the vectorized SGD kernels and conflict policies."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import (
    ConflictPolicy,
    conflict_stats,
    sgd_batch_update,
    sgd_epoch,
    sgd_epoch_serial,
    updates_per_epoch,
)
from repro.mf.loss import per_entry_errors, regularized_loss, rmse
from repro.mf.model import MFModel


def _single_sample_reference(P, Q, r, c, val, lr, reg):
    """The textbook SGD update for one sample (paper Figure 1)."""
    p = P[r].copy()
    q = Q[:, c].copy()
    err = val - p @ q
    P[r] = p + lr * (err * q - reg * p)
    Q[:, c] = q + lr * (err * p - reg * q)
    return err


class TestSingleSample:
    @pytest.mark.parametrize("policy", list(ConflictPolicy))
    def test_matches_reference_update(self, policy):
        """With one sample there are no conflicts: every policy must apply
        the exact Figure 1 update."""
        model = MFModel.init(4, 4, 3, seed=0)
        ref_p, ref_q = model.P.copy(), model.Q.copy()
        err = _single_sample_reference(ref_p, ref_q, 1, 2, 4.5, 0.01, 0.05)
        mse = sgd_batch_update(
            model, np.array([1]), np.array([2]), np.array([4.5], dtype=np.float32),
            lr=0.01, reg=0.05, policy=policy,
        )
        np.testing.assert_allclose(model.P, ref_p, rtol=1e-5)
        np.testing.assert_allclose(model.Q, ref_q, rtol=1e-5)
        assert mse == pytest.approx(err * err, rel=1e-4)

    def test_untouched_rows_unchanged(self):
        model = MFModel.init(5, 5, 3, seed=0)
        before = model.P.copy()
        sgd_batch_update(
            model, np.array([2]), np.array([3]), np.array([1.0], dtype=np.float32),
            lr=0.01, reg=0.0,
        )
        np.testing.assert_array_equal(model.P[0], before[0])
        np.testing.assert_array_equal(model.P[4], before[4])

    def test_empty_batch(self):
        model = MFModel.init(3, 3, 2, seed=0)
        before = model.P.copy()
        mse = sgd_batch_update(
            model, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([], dtype=np.float32), lr=0.01, reg=0.0,
        )
        assert mse == 0.0
        np.testing.assert_array_equal(model.P, before)


class TestConflictPolicies:
    def test_last_write_loses_updates(self):
        """Two samples on the same column: LAST_WRITE keeps only one
        update — the lost-update semantics of the paper's async streams."""
        model = MFModel(
            np.ones((2, 2), dtype=np.float32), np.ones((2, 2), dtype=np.float32)
        )
        snapshot = model.copy()
        rows = np.array([0, 1])
        cols = np.array([0, 0])  # same item column
        vals = np.array([5.0, 1.0], dtype=np.float32)
        sgd_batch_update(model, rows, cols, vals, lr=0.1, reg=0.0,
                         policy=ConflictPolicy.LAST_WRITE)
        # the surviving q update must equal applying ONLY the second sample's
        # gradient to the stale snapshot
        p1, q0 = snapshot.P[1], snapshot.Q[:, 0]
        err1 = 1.0 - p1 @ q0
        expected_q = q0 + 0.1 * err1 * p1
        np.testing.assert_allclose(model.Q[:, 0], expected_q, rtol=1e-5)

    def test_atomic_averages_duplicates(self):
        """ATOMIC accumulates a mean of duplicate-index gradients, so a
        batch of identical samples equals a single-sample update."""
        m1 = MFModel.init(2, 2, 2, seed=1)
        m2 = m1.copy()
        rows = np.array([0, 0, 0, 0])
        cols = np.array([1, 1, 1, 1])
        vals = np.full(4, 4.0, dtype=np.float32)
        sgd_batch_update(m1, rows, cols, vals, 0.05, 0.0, ConflictPolicy.ATOMIC)
        sgd_batch_update(m2, rows[:1], cols[:1], vals[:1], 0.05, 0.0, ConflictPolicy.ATOMIC)
        np.testing.assert_allclose(m1.P, m2.P, rtol=1e-5)
        np.testing.assert_allclose(m1.Q, m2.Q, rtol=1e-5)

    def test_atomic_no_divergence_with_many_duplicates(self):
        """The step-size amplification bug: many duplicates in one batch
        must NOT blow up the parameters (regression test)."""
        model = MFModel.init(50, 3, 4, seed=0)  # only 3 items: heavy conflicts
        rng = np.random.default_rng(0)
        data = RatingMatrix(
            50, 3,
            rng.integers(0, 50, 3000),
            rng.integers(0, 3, 3000),
            rng.uniform(1, 5, 3000).astype(np.float32),
        )
        for _ in range(5):
            sgd_epoch(model, data, lr=0.05, reg=0.01, batch_size=1024, rng=rng)
        assert np.all(np.isfinite(model.P))
        assert np.all(np.isfinite(model.Q))
        assert np.abs(model.Q).max() < 100


class TestEpoch:
    def test_epoch_reduces_loss(self, small_ratings):
        model = MFModel.init_for(small_ratings, 8, seed=0)
        before = model.rmse(small_ratings)
        rng = np.random.default_rng(0)
        sgd_epoch(model, small_ratings, lr=0.01, reg=0.01, rng=rng)
        assert model.rmse(small_ratings) < before

    def test_epoch_returns_mean_sq_error(self, small_ratings):
        model = MFModel.init_for(small_ratings, 8, seed=0)
        mse = sgd_epoch(model, small_ratings, lr=0.01, reg=0.01)
        assert mse == pytest.approx(model.rmse(small_ratings) ** 2, rel=0.5)

    def test_epoch_empty_data(self):
        model = MFModel.init(3, 3, 2)
        assert sgd_epoch(model, RatingMatrix(3, 3, [], [], []), 0.01, 0.01) == 0.0

    def test_serial_epoch_matches_batchsize_one(self, tiny_ratings):
        """Vectorized epoch with batch_size=1 in storage order equals the
        serial reference exactly."""
        m1 = MFModel.init_for(tiny_ratings, 4, seed=2)
        m2 = m1.copy()
        sgd_epoch_serial(m1, tiny_ratings, lr=0.02, reg=0.01)
        sgd_epoch(m2, tiny_ratings, lr=0.02, reg=0.01, batch_size=1, rng=None)
        np.testing.assert_allclose(m1.P, m2.P, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(m1.Q, m2.Q, rtol=1e-4, atol=1e-6)

    def test_updates_per_epoch(self, tiny_ratings):
        assert updates_per_epoch(tiny_ratings) == tiny_ratings.nnz


class TestConflictStats:
    def test_no_conflicts(self):
        s = conflict_stats(np.array([0, 1, 2]), np.array([0, 1, 2]))
        assert s.row_conflicts == 0
        assert s.col_conflicts == 0
        assert s.conflict_fraction == 0.0

    def test_all_same(self):
        s = conflict_stats(np.array([1, 1, 1]), np.array([2, 2, 2]))
        assert s.row_conflicts == 3
        assert s.col_conflicts == 3
        assert s.conflict_fraction == 1.0

    def test_mixed(self):
        s = conflict_stats(np.array([0, 0, 1]), np.array([0, 1, 2]))
        assert s.row_conflicts == 2
        assert s.col_conflicts == 0


class TestLoss:
    def test_rmse_wrapper(self, tiny_ratings):
        model = MFModel.init_for(tiny_ratings, 4, seed=0)
        assert rmse(model, tiny_ratings) == pytest.approx(model.rmse(tiny_ratings))

    def test_regularized_loss_positive_and_grows_with_reg(self, tiny_ratings):
        model = MFModel.init_for(tiny_ratings, 4, seed=0)
        l0 = regularized_loss(model, tiny_ratings, reg_p=0.0)
        l1 = regularized_loss(model, tiny_ratings, reg_p=1.0)
        assert 0 <= l0 < l1

    def test_reg_split(self, tiny_ratings):
        model = MFModel.init_for(tiny_ratings, 4, seed=0)
        both = regularized_loss(model, tiny_ratings, reg_p=0.5, reg_q=0.5)
        assert both == pytest.approx(
            regularized_loss(model, tiny_ratings, reg_p=0.5, reg_q=0.0)
            + 0.5 * float(np.sum(np.square(model.Q, dtype=np.float64))),
            rel=1e-6,
        )

    def test_per_entry_errors(self, tiny_ratings):
        model = MFModel.init_for(tiny_ratings, 4, seed=0)
        errs = per_entry_errors(model, tiny_ratings)
        assert len(errs) == tiny_ratings.nnz
        assert np.sqrt(np.mean(errs**2)) == pytest.approx(model.rmse(tiny_ratings), rel=1e-5)
