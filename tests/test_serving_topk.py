"""Property tier: batched top-k equals the brute-force oracle.

The scorer's contract is a pure function of the snapshot and the
request: rank by descending score, break ties by ascending item id —
exactly ``np.lexsort((item, -score))`` of the dense score row, truncated
to k, after removing excluded items and restricting to candidates.
The Hypothesis sweep replays that oracle against randomized models
(integer-valued factors, so score ties actually happen), batch shapes,
per-request ks, exclusion masks, and candidate allow-lists.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.scorer import Scorer, SeenIndex
from repro.serving.store import ModelSnapshot, ModelStore


def store_for(P, Q, version: int = 1) -> ModelStore:
    """An in-memory store serving exactly these factors."""
    P = np.array(P, dtype=np.float32)
    Q = np.array(Q, dtype=np.float32)
    P.flags.writeable = False
    Q.flags.writeable = False
    store = ModelStore()
    store._snapshot = ModelSnapshot(
        P=P, Q=Q, version=version, epoch=0, path="<memory>"
    )
    return store


def oracle_top_k(P, Q, user, k, seen, cand):
    """Brute force: full argsort of the masked score row."""
    n = Q.shape[1]
    ids = np.arange(n, dtype=np.int64) if cand is None else cand
    scores = (P[user] @ Q).astype(np.float32)[ids]
    allowed = np.ones(ids.size, dtype=bool)
    if seen is not None and seen.size:
        allowed &= ~np.isin(ids, seen)
    idx = np.flatnonzero(allowed)
    order = np.lexsort((ids[idx], -scores[idx]))
    chosen = idx[order][: max(int(k), 0)]
    return ids[chosen], scores[chosen]


@st.composite
def topk_cases(draw):
    m = draw(st.integers(1, 8))
    n = draw(st.integers(1, 12))
    kdim = draw(st.integers(1, 3))
    # small integer factors force frequent exact score ties
    cell = st.integers(-2, 2)
    P = np.array(
        draw(st.lists(cell, min_size=m * kdim, max_size=m * kdim)),
        dtype=np.float32,
    ).reshape(m, kdim)
    Q = np.array(
        draw(st.lists(cell, min_size=kdim * n, max_size=kdim * n)),
        dtype=np.float32,
    ).reshape(kdim, n)
    batch = draw(st.integers(1, 5))
    users = draw(
        st.lists(st.integers(0, m - 1), min_size=batch, max_size=batch)
    )
    if draw(st.booleans()):
        k = draw(st.integers(0, n + 2))
    else:
        k = draw(st.lists(st.integers(0, n + 2), min_size=batch, max_size=batch))
    exclude = None
    if draw(st.booleans()):
        exclude = {
            u: draw(st.lists(st.integers(0, n - 1), max_size=n))
            for u in set(users)
            if draw(st.booleans())
        }
    candidates = None
    if draw(st.booleans()):
        # duplicates and arbitrary order on purpose: the scorer dedupes
        candidates = draw(st.lists(st.integers(0, n - 1), max_size=2 * n))
    return P, Q, users, k, exclude, candidates


def _seen_array(exclude, user):
    if exclude is None or user not in exclude:
        return np.empty(0, dtype=np.int64)
    return np.asarray(exclude[user], dtype=np.int64)


@settings(max_examples=120, deadline=None, derandomize=True)
@given(topk_cases())
def test_matches_bruteforce_oracle(case):
    P, Q, users, k, exclude, candidates = case
    store = store_for(P, Q)
    result = Scorer(store).top_k(users, k, exclude=exclude, candidates=candidates)

    cand = (
        None
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    ks = k if isinstance(k, list) else [k] * len(users)
    assert result.version == 1
    assert result.ks == tuple(ks)
    assert len(result) == len(users)
    for i, (user, ki) in enumerate(zip(users, ks)):
        want_items, want_scores = oracle_top_k(
            P, Q, user, ki, _seen_array(exclude, user), cand
        )
        np.testing.assert_array_equal(result.items[i], want_items)
        np.testing.assert_array_equal(result.scores[i], want_scores)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(topk_cases())
def test_fp16_path_matches_oracle_on_quantized_factors(case):
    P, Q, users, k, exclude, candidates = case
    # fractional values so binary16 rounding actually changes something
    P = (P / 3.0).astype(np.float32)
    Q = (Q / 3.0).astype(np.float32)
    store = store_for(P, Q)
    Pq, Qq = store.snapshot().quantized()
    result = Scorer(store, precision="fp16").top_k(
        users, k, exclude=exclude, candidates=candidates
    )

    cand = (
        None
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    ks = k if isinstance(k, list) else [k] * len(users)
    for i, (user, ki) in enumerate(zip(users, ks)):
        want_items, want_scores = oracle_top_k(
            Pq, Qq, user, ki, _seen_array(exclude, user), cand
        )
        np.testing.assert_array_equal(result.items[i], want_items)
        np.testing.assert_array_equal(result.scores[i], want_scores)


class TestDeterministicTieBreaking:
    def test_constant_scores_rank_by_ascending_item_id(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 6)))
        result = Scorer(store).top_k([0, 1], 4)
        for items in result.items:
            np.testing.assert_array_equal(items, [0, 1, 2, 3])

    def test_threshold_ties_fill_in_ascending_id(self):
        # scores: item0=5, items1..4=3, item5=1; k=3 must pick 0,1,2
        Q = np.array([[5.0, 3.0, 3.0, 3.0, 3.0, 1.0]], dtype=np.float32)
        store = store_for(np.ones((1, 1)), Q)
        result = Scorer(store).top_k([0], 3)
        np.testing.assert_array_equal(result.items[0], [0, 1, 2])

    def test_identical_calls_identical_results(self):
        rng = np.random.default_rng(7)
        store = store_for(rng.normal(size=(5, 3)), rng.normal(size=(3, 9)))
        a = Scorer(store).top_k([0, 2, 4], 5)
        b = Scorer(store).top_k([0, 2, 4], 5)
        for x, y in zip(a.items, b.items):
            np.testing.assert_array_equal(x, y)


class TestFilters:
    def test_empty_candidate_list_with_exclude_returns_empty(self):
        # regression: searchsorted clamp must not index an empty cand
        store = store_for(np.ones((2, 2)), np.ones((2, 4)))
        result = Scorer(store).top_k(
            [0, 1], 3, exclude={0: [1, 2]}, candidates=[]
        )
        for items in result.items:
            assert items.size == 0

    def test_exclude_seen_via_index(self, tiny_ratings):
        seen = SeenIndex.from_ratings(tiny_ratings)
        rng = np.random.default_rng(0)
        store = store_for(
            rng.normal(size=(tiny_ratings.m, 4)),
            rng.normal(size=(4, tiny_ratings.n)),
        )
        users = np.arange(tiny_ratings.m)
        result = Scorer(store).top_k(users, tiny_ratings.n, exclude=seen)
        for user, items in zip(users, result.items):
            rated = set(seen.items_for(int(user)).tolist())
            assert rated.isdisjoint(items.tolist())
            assert items.size == tiny_ratings.n - len(rated)

    def test_seen_index_matches_ratings(self, tiny_ratings):
        seen = SeenIndex.from_ratings(tiny_ratings)
        for user in range(tiny_ratings.m):
            want = sorted(
                tiny_ratings.cols[tiny_ratings.rows == user].tolist()
            )
            assert sorted(seen.items_for(user).tolist()) == want
        assert seen.items_for(-1).size == 0
        assert seen.items_for(tiny_ratings.m).size == 0

    def test_short_list_when_k_exceeds_allowed(self):
        store = store_for(np.ones((1, 2)), np.ones((2, 3)))
        result = Scorer(store).top_k([0], 10, candidates=[2, 0])
        np.testing.assert_array_equal(result.items[0], [0, 2])

    def test_per_request_k(self):
        store = store_for(np.ones((3, 2)), np.ones((2, 5)))
        result = Scorer(store).top_k([0, 1, 2], [1, 0, 3])
        assert [len(x) for x in result.items] == [1, 0, 3]
        assert result.ks == (1, 0, 3)


class TestValidation:
    def test_user_out_of_range(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="user id out of range"):
            Scorer(store).top_k([2], 1)
        with pytest.raises(ValueError, match="user id out of range"):
            Scorer(store).top_k([-1], 1)

    def test_candidate_out_of_range(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="candidate item id out of range"):
            Scorer(store).top_k([0], 1, candidates=[3])

    def test_negative_k(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="non-negative"):
            Scorer(store).top_k([0], -1)

    def test_bad_precision(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="precision"):
            Scorer(store, precision="fp64")

    def test_empty_batch(self):
        store = store_for(np.ones((2, 2)), np.ones((2, 3)))
        result = Scorer(store).top_k([], 5)
        assert len(result) == 0
        assert result.version == 1
