"""Unit tests for out-of-core rating-file processing."""

import numpy as np
import pytest

from repro.data.io import save_text
from repro.data.streaming import (
    StreamStats,
    count_statistics,
    external_shuffle,
    stream_text_batches,
)


@pytest.fixture
def text_file(small_ratings, tmp_path):
    path = tmp_path / "ratings.txt"
    save_text(small_ratings, path)
    return path, small_ratings


class TestStreamBatches:
    def test_batches_cover_file(self, text_file):
        path, ratings = text_file
        chunks = list(stream_text_batches(path, batch_size=500))
        assert sum(c.nnz for c in chunks) == ratings.nnz
        assert all(c.nnz <= 500 for c in chunks)

    def test_shape_from_header(self, text_file):
        path, ratings = text_file
        first = next(stream_text_batches(path, batch_size=100))
        assert first.shape == ratings.shape

    def test_explicit_shape_overrides(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 0 1.0\n1 1 2.0\n")
        chunks = list(stream_text_batches(path, batch_size=10, m=5, n=5))
        assert chunks[0].shape == (5, 5)

    def test_missing_shape_rejected(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 0 1.0\n")
        with pytest.raises(ValueError, match="shape"):
            list(stream_text_batches(path, batch_size=10))

    def test_content_preserved(self, text_file):
        path, ratings = text_file
        chunks = list(stream_text_batches(path, batch_size=700))
        vals = np.concatenate([c.vals for c in chunks])
        np.testing.assert_allclose(np.sort(vals), np.sort(ratings.vals), rtol=1e-5)

    def test_bad_batch_size(self, text_file):
        path, _ = text_file
        with pytest.raises(ValueError):
            list(stream_text_batches(path, batch_size=0))


class TestCountStatistics:
    def test_matches_in_memory(self, text_file):
        path, ratings = text_file
        stats = count_statistics(path)
        assert isinstance(stats, StreamStats)
        assert stats.nnz == ratings.nnz
        assert stats.value_min == pytest.approx(float(ratings.vals.min()))
        assert stats.value_max == pytest.approx(float(ratings.vals.max()))
        assert stats.mean == pytest.approx(ratings.mean_rating(), rel=1e-5)

    def test_inferred_shape_bounds(self, text_file):
        path, ratings = text_file
        stats = count_statistics(path)
        # inferred from max indices: never exceeds the declared shape
        assert stats.m <= ratings.m
        assert stats.n <= ratings.n
        assert stats.reuse_ratio > 0

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# 3 3\n")
        with pytest.raises(ValueError, match="no rating"):
            count_statistics(path)


class TestExternalShuffle:
    def test_line_multiset_preserved(self, text_file, tmp_path):
        path, ratings = text_file
        out = tmp_path / "shuffled.txt"
        moved = external_shuffle(path, out, buckets=4, seed=3)
        assert moved == ratings.nnz
        src_lines = sorted(
            l for l in path.read_text().splitlines() if not l.startswith("#")
        )
        dst_lines = sorted(
            l for l in out.read_text().splitlines() if not l.startswith("#")
        )
        assert src_lines == dst_lines

    def test_order_changes(self, text_file, tmp_path):
        path, _ = text_file
        out = tmp_path / "shuffled.txt"
        external_shuffle(path, out, buckets=4, seed=3)
        src = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        dst = [l for l in out.read_text().splitlines() if not l.startswith("#")]
        assert src != dst

    def test_header_kept(self, text_file, tmp_path):
        path, ratings = text_file
        out = tmp_path / "shuffled.txt"
        external_shuffle(path, out, buckets=2, seed=0)
        first = out.read_text().splitlines()[0]
        assert first == f"# {ratings.m} {ratings.n}"

    def test_temp_buckets_cleaned(self, text_file, tmp_path):
        path, _ = text_file
        external_shuffle(path, tmp_path / "s.txt", buckets=3, seed=0)
        leftovers = list(tmp_path.glob(".shuffle-*"))
        assert leftovers == []

    def test_deterministic(self, text_file, tmp_path):
        path, _ = text_file
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        external_shuffle(path, a, buckets=4, seed=9)
        external_shuffle(path, b, buckets=4, seed=9)
        assert a.read_text() == b.read_text()

    def test_roundtrip_trains(self, text_file, tmp_path):
        """Shuffled file loads and trains like the original."""
        from repro.data.io import load_text
        from repro.mf.sgd import HogwildSGD

        path, _ = text_file
        out = tmp_path / "s.txt"
        external_shuffle(path, out, buckets=4, seed=1)
        data = load_text(out)
        h = HogwildSGD(k=8, lr=0.01, seed=0)
        h.fit(data, epochs=3)
        assert h.history.rmse[-1] < h.history.rmse[0]

    def test_invalid_buckets(self, text_file, tmp_path):
        path, _ = text_file
        with pytest.raises(ValueError):
            external_shuffle(path, tmp_path / "s.txt", buckets=0)
