"""Unit tests for configuration types."""

import pytest

from repro.core.config import (
    CommBackendKind,
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)


class TestCommConfig:
    def test_defaults(self):
        c = CommConfig()
        assert c.transmit is TransmitMode.AUTO
        assert not c.fp16
        assert c.streams == 1
        assert c.backend is CommBackendKind.COMM
        assert not c.uses_async

    def test_streams_flag(self):
        assert CommConfig(streams=4).uses_async

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            CommConfig(streams=0)

    def test_auto_resolves_to_q_only(self):
        c = CommConfig()
        assert c.resolve_transmit(100, 10) is TransmitMode.Q_ONLY
        assert c.resolve_transmit(10, 100) is TransmitMode.Q_ONLY

    def test_explicit_mode_passthrough(self):
        c = CommConfig(transmit=TransmitMode.P_AND_Q)
        assert c.resolve_transmit(100, 10) is TransmitMode.P_AND_Q


class TestHCCConfig:
    def test_defaults_match_paper(self):
        c = HCCConfig()
        assert c.k == 128
        assert c.lambda_threshold == 10.0  # the paper's lambda
        assert c.partition is PartitionStrategy.AUTO
        assert c.dp1_tolerance == 0.1      # Algorithm 1's 10% criterion

    def test_validation(self):
        with pytest.raises(ValueError):
            HCCConfig(k=0)
        with pytest.raises(ValueError):
            HCCConfig(epochs=0)
        with pytest.raises(ValueError):
            HCCConfig(lambda_threshold=0)
        with pytest.raises(ValueError):
            HCCConfig(batch_size=0)
        with pytest.raises(ValueError):
            HCCConfig(dp1_tolerance=1.0)

    def test_with_comm_helper(self):
        c = HCCConfig().with_comm(fp16=True, streams=2)
        assert c.comm.fp16
        assert c.comm.streams == 2
        assert c.k == 128  # rest untouched

    def test_frozen(self):
        c = HCCConfig()
        with pytest.raises(AttributeError):
            c.k = 64

    def test_strategy_enum_values(self):
        assert PartitionStrategy("dp0") is PartitionStrategy.DP0
        assert PartitionStrategy("dp1") is PartitionStrategy.DP1
        assert PartitionStrategy("dp2") is PartitionStrategy.DP2
        assert PartitionStrategy("even") is PartitionStrategy.EVEN
        assert PartitionStrategy("auto") is PartitionStrategy.AUTO
