"""Unit tests for the runtime Processor throughput model."""

import pytest

from repro.data.datasets import NETFLIX, YAHOO_R2
from repro.hardware.processor import (
    CPU_CORUN_FACTOR,
    OVERSUBSCRIPTION_PENALTY,
    Processor,
)
from repro.hardware.specs import RTX_2080, RTX_2080S, XEON_6242


class TestNaming:
    def test_reference_config_plain_name(self):
        assert Processor(XEON_6242).name == "6242"

    def test_thread_qualified_name(self):
        assert Processor(XEON_6242, threads=24).name == "6242-24T"

    def test_instance_suffix(self):
        assert Processor(RTX_2080, instance="gpu1").name == "2080#gpu1"


class TestUpdateRate:
    def test_table4_cell_reproduced(self):
        p = Processor(RTX_2080S)
        assert p.update_rate(128, NETFLIX) == pytest.approx(1_052_866_849, rel=1e-6)

    def test_24t_qualified_cell(self):
        p = Processor(XEON_6242, threads=24)
        assert p.update_rate(128, NETFLIX) == pytest.approx(348_790_567, rel=1e-6)

    def test_rate_scales_with_k(self):
        # Eq. 2: rate ~ 1/(16k+4)
        p = Processor(RTX_2080)
        r128 = p.update_rate(128, NETFLIX)
        r32 = p.update_rate(32, NETFLIX)
        assert r32 / r128 == pytest.approx((16 * 128 + 4) / (16 * 32 + 4), rel=1e-6)

    def test_thread_scaling_cpu(self):
        fast = Processor(XEON_6242, threads=16).update_rate(128)
        slow = Processor(XEON_6242, threads=10).update_rate(128)
        assert slow / fast == pytest.approx(39.32 / 67.30, rel=1e-3)

    def test_partition_boost(self):
        p = Processor(RTX_2080)
        full = p.update_rate(128, NETFLIX, partition_frac=1.0)
        part = p.update_rate(128, NETFLIX, partition_frac=0.25)
        assert part > full
        assert part / full == pytest.approx(1 + 0.042 * 0.75, rel=1e-6)

    def test_corun_penalty_cpu_only(self):
        cpu = Processor(XEON_6242)
        gpu = Processor(RTX_2080)
        assert cpu.update_rate(128, NETFLIX, corun=True) == pytest.approx(
            CPU_CORUN_FACTOR * cpu.update_rate(128, NETFLIX), rel=1e-6
        )
        assert gpu.update_rate(128, NETFLIX, corun=True) == pytest.approx(
            gpu.update_rate(128, NETFLIX), rel=1e-6
        )

    def test_oversubscription_penalty(self):
        p = Processor(XEON_6242, threads=64)
        assert p.oversubscribed
        ok = Processor(XEON_6242, threads=32)
        assert p.update_rate(128) == pytest.approx(
            OVERSUBSCRIPTION_PENALTY * ok.update_rate(128), rel=1e-6
        )

    def test_runtime_penalty_only_when_corun(self):
        p = Processor(XEON_6242, runtime_penalty=0.5)
        clean = Processor(XEON_6242)
        assert p.update_rate(128, NETFLIX) == pytest.approx(
            clean.update_rate(128, NETFLIX)
        )
        assert p.update_rate(128, NETFLIX, corun=True) == pytest.approx(
            0.5 * clean.update_rate(128, NETFLIX, corun=True)
        )

    def test_time_share_scales_rate(self):
        full = Processor(XEON_6242)
        shared = Processor(XEON_6242, time_share=0.85)
        assert shared.update_rate(128) == pytest.approx(0.85 * full.update_rate(128))

    def test_with_time_share_roundtrip(self):
        p = Processor(XEON_6242, time_share=0.5, runtime_penalty=0.9)
        restored = p.with_time_share(1.0)
        assert restored.time_share == 1.0
        assert restored.runtime_penalty == 0.9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Processor(XEON_6242).update_rate(0)


class TestComputeTime:
    def test_inverse_of_rate(self):
        p = Processor(RTX_2080S)
        rate = p.update_rate(128, NETFLIX)
        assert p.compute_time(rate, 128, NETFLIX) == pytest.approx(1.0)

    def test_zero_updates(self):
        assert Processor(RTX_2080S).compute_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Processor(RTX_2080S).compute_time(-1)

    def test_r2_slower_than_netflix_on_gpu(self):
        p = Processor(RTX_2080S)
        t_netflix = p.compute_time(1e9, 128, NETFLIX)
        t_r2 = p.compute_time(1e9, 128, YAHOO_R2)
        assert t_r2 > 2 * t_netflix  # Table 4's R2 collapse


class TestEffectiveBandwidth:
    def test_iw_matches_table2(self):
        assert Processor(XEON_6242).effective_bandwidth(1.0) == pytest.approx(67.30)

    def test_partition_boost_direction(self):
        p = Processor(RTX_2080)
        assert p.effective_bandwidth(0.3) > p.effective_bandwidth(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Processor(XEON_6242).effective_bandwidth(0.0)


class TestValidation:
    def test_bad_time_share(self):
        with pytest.raises(ValueError):
            Processor(XEON_6242, time_share=0.0)

    def test_bad_runtime_penalty(self):
        with pytest.raises(ValueError):
            Processor(XEON_6242, runtime_penalty=1.5)

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            Processor(XEON_6242, threads=-1)
