"""Unit tests for wall-clock partition tuning (Algorithm 1 for real)."""

import numpy as np
import pytest

from repro.parallel.tuning import MeasuredPartition, measure_partition


class TestMeasurePartition:
    def test_fractions_on_simplex(self, medium_ratings):
        mp = measure_partition(medium_ratings, 3, k=8, seed=0)
        fr = np.asarray(mp.plan.fractions)
        assert fr.sum() == pytest.approx(1.0)
        assert np.all(fr > 0)

    def test_near_uniform_on_homogeneous_host(self, medium_ratings):
        """All shards run on the same CPU, so no fraction should stray
        far from the fair share."""
        n = 4
        mp = measure_partition(medium_ratings, n, k=8, seed=0)
        for f in mp.plan.fractions:
            assert f == pytest.approx(1.0 / n, abs=0.15)

    def test_reports_measurements(self, medium_ratings):
        mp = measure_partition(medium_ratings, 2, k=8, seed=0)
        assert isinstance(mp, MeasuredPartition)
        assert len(mp.independent_times) == 2
        assert all(t > 0 for t in mp.independent_times)
        assert mp.calibration_seconds > 0

    def test_no_refine_is_dp0(self, medium_ratings):
        mp = measure_partition(medium_ratings, 2, k=8, refine=False, seed=0)
        assert mp.plan.strategy == "dp0"

    def test_refined_is_dp1(self, medium_ratings):
        mp = measure_partition(medium_ratings, 2, k=8, refine=True, seed=0)
        assert mp.plan.strategy == "dp1"

    def test_single_worker(self, medium_ratings):
        mp = measure_partition(medium_ratings, 1, k=8, seed=0)
        assert mp.plan.fractions == (1.0,)

    def test_feeds_shared_memory_trainer(self, medium_ratings):
        from repro.parallel.executor import SharedMemoryTrainer

        mp = measure_partition(medium_ratings, 2, k=8, seed=0)
        trainer = SharedMemoryTrainer(
            medium_ratings, k=8, n_workers=2, lr=0.01,
            fractions=list(mp.plan.fractions), seed=0,
        )
        res = trainer.train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_validation(self, medium_ratings):
        with pytest.raises(ValueError):
            measure_partition(medium_ratings, 0)
