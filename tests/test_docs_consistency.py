"""Guard rails keeping the documentation in sync with the code."""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_text():
    return (REPO / "README.md").read_text()


class TestDesignInventory:
    def test_every_module_listed(self, design_text):
        """DESIGN.md's system inventory must name every source module."""
        missing = []
        for path in (REPO / "src" / "repro").rglob("*.py"):
            name = path.name
            if name in ("__init__.py", "__main__.py"):
                continue
            if name not in design_text:
                missing.append(str(path.relative_to(REPO)))
        assert not missing, f"modules absent from DESIGN.md: {missing}"

    def test_every_experiment_indexed(self, design_text):
        from repro.experiments.figures import ALL_EXPERIMENTS

        for exp_id in ALL_EXPERIMENTS:
            if exp_id in ("fig5", "fig6"):  # indexed jointly as Fig. 5/6
                continue
            token = exp_id.replace("fig", "Fig. ").replace("table", "Table ")
            assert token in design_text, f"{exp_id} missing from DESIGN.md"

    def test_every_ablation_indexed(self, design_text):
        from repro.experiments.ablations import ALL_ABLATIONS

        for ab_id in ALL_ABLATIONS:
            assert ab_id in design_text, f"ablation {ab_id} missing from DESIGN.md"

    def test_paper_check_recorded(self, design_text):
        assert "Paper-text check" in design_text


class TestReadme:
    def test_every_example_listed(self, readme_text):
        for path in (REPO / "examples").glob("*.py"):
            assert path.name in readme_text, f"{path.name} missing from README"

    def test_cli_commands_listed(self, readme_text):
        for cmd in ("datasets", "train", "autotune", "reproduce", "ablate"):
            assert f"python -m repro {cmd}" in readme_text

    def test_quickstart_names_exist(self):
        import repro

        for name in ("HCCMF", "HCCConfig", "NETFLIX", "paper_workstation"):
            assert hasattr(repro, name)


class TestExperimentsMd:
    @pytest.fixture(scope="class")
    def text(self):
        return (REPO / "EXPERIMENTS.md").read_text()

    def test_every_paper_artifact_present(self, text):
        for heading in (
            "Figure 3(a)", "Figure 3(b)", "Table 2", "Figure 5", "Figure 6",
            "Figure 7", "Table 4", "Figure 8", "Table 5", "Figure 9", "Table 6",
        ):
            assert heading in text, heading

    def test_ablations_section_present(self, text):
        assert "Ablations and extensions" in text

    def test_regenerable(self, text):
        assert "generate_experiments_md.py" in text


class TestDocsDirectory:
    def test_cost_model_doc_names_real_constants(self):
        doc = (REPO / "docs" / "cost_model.md").read_text()
        import repro.hardware.processor as proc

        assert "CPU_CORUN_FACTOR" in doc
        assert f"= {proc.CPU_CORUN_FACTOR}" in doc or str(proc.CPU_CORUN_FACTOR) in doc

    def test_architecture_doc_mentions_planes(self):
        doc = (REPO / "docs" / "architecture.md").read_text()
        assert "numeric plane" in doc
        assert "timing plane" in doc
