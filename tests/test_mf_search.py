"""Unit tests for hyper-parameter grid search."""

import pytest

from repro.mf.search import SearchReport, SearchSpace, grid_search


class TestSearchSpace:
    def test_combinations_cartesian(self):
        space = SearchSpace(k=(4, 8), lr=(0.01,), reg=(0.01, 0.1))
        combos = space.combinations()
        assert len(combos) == 4
        assert {"k": 8, "lr": 0.01, "reg": 0.1} in combos

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchSpace(k=())
        with pytest.raises(ValueError):
            SearchSpace(k=(0,))
        with pytest.raises(ValueError):
            SearchSpace(lr=(-0.1,))


class TestGridSearch:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.data.datasets import NETFLIX

        data = NETFLIX.scaled(10_000).generate(seed=6)
        space = SearchSpace(k=(4, 8), lr=(0.005, 0.02), reg=(0.01,))
        return grid_search(data, space, epochs=6, seed=6)

    def test_all_candidates_evaluated(self, report):
        assert isinstance(report, SearchReport)
        assert len(report.results) == 4

    def test_sorted_by_validation_rmse(self, report):
        rmses = [r.val_rmse for r in report.results]
        assert rmses == sorted(rmses)
        assert report.best.val_rmse == rmses[0]

    def test_histories_recorded(self, report):
        for r in report.results:
            assert len(r.history) == r.epochs_run
            assert r.epochs_run <= 6

    def test_top_n(self, report):
        assert len(report.top(2)) == 2
        assert report.top(2)[0] is report.best

    def test_bigger_lr_learns_faster_here(self, report):
        """On this short budget, lr=0.02 candidates beat lr=0.005."""
        best_lr = report.best.params["lr"]
        assert best_lr == 0.02

    def test_random_subsample(self):
        from repro.data.datasets import NETFLIX

        data = NETFLIX.scaled(6_000).generate(seed=6)
        space = SearchSpace(k=(4, 8), lr=(0.005, 0.01, 0.02), reg=(0.01, 0.1))
        report = grid_search(data, space, epochs=3, max_candidates=5, seed=0)
        assert len(report.results) == 5

    def test_validation_errors(self):
        from repro.data.datasets import NETFLIX

        data = NETFLIX.scaled(4_000).generate(seed=0)
        with pytest.raises(ValueError):
            grid_search(data, epochs=0)
        with pytest.raises(ValueError):
            grid_search(data, val_fraction=1.0)
