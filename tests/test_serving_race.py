"""Concurrency tier: hot-swap under live load never serves a torn model.

A writer thread swaps between checkpoints whose P and Q are constant
matrices filled with the same *tag* value (a different tag per file).
Reader threads hammer ``snapshot()`` and ``Scorer.top_k`` the whole
time.  A torn read — P from one checkpoint paired with Q from another —
would produce a score of ``k·tag_a·tag_b``, which for the chosen tags
is distinguishable from every legitimate ``k·tag²``; a torn snapshot
object would show ``P[0,0] != Q[0,0]``.  Any violation is collected
(thread-safely) and fails the test deterministically at join time.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.checkpoint import Checkpoint, save_checkpoint
from repro.mf.model import MFModel
from repro.serving.scorer import Scorer
from repro.serving.store import ModelStore

M, N, K = 6, 8, 4
#: tags chosen so every cross product k*a*b differs from every k*t**2
TAGS = (1.0, 2.0, 4.0)


def _tagged_checkpoint(path, tag):
    model = MFModel(
        np.full((M, K), tag, dtype=np.float32),
        np.full((K, N), tag, dtype=np.float32),
    )
    save_checkpoint(Checkpoint(model=model, epoch=int(tag)), path)
    return str(path)


def test_hot_swap_under_live_load_is_never_torn(tmp_path):
    paths = [
        _tagged_checkpoint(tmp_path / f"tag{i}", tag)
        for i, tag in enumerate(TAGS)
    ]
    store = ModelStore(paths[0])
    scorer = Scorer(store)
    legit_scores = {float(K * tag * tag) for tag in TAGS}

    n_readers = 4
    swaps = 150
    problems: list[str] = []
    problems_lock = threading.Lock()
    stop = threading.Event()

    def complain(msg: str) -> None:
        with problems_lock:
            problems.append(msg)

    def reader(seed: int) -> None:
        rng = np.random.default_rng(seed)
        reads = 0
        while not stop.is_set() or reads == 0:
            reads += 1
            try:
                snap = store.snapshot()
                if snap.P[0, 0] != snap.Q[0, 0]:
                    complain(
                        f"torn snapshot v{snap.version}: "
                        f"P tag {snap.P[0, 0]} vs Q tag {snap.Q[0, 0]}"
                    )
                users = rng.integers(0, M, size=3)
                result = scorer.top_k(users, 2)
                for row in result.scores:
                    for score in row:
                        if float(score) not in legit_scores:
                            complain(
                                f"torn score {score} from v{result.version} "
                                f"(legitimate: {sorted(legit_scores)})"
                            )
            except Exception as exc:  # noqa: BLE001 - reported at join
                complain(f"reader raised {type(exc).__name__}: {exc}")
                return

    readers = [
        threading.Thread(target=reader, args=(seed,), daemon=True)
        for seed in range(n_readers)
    ]
    for t in readers:
        t.start()
    try:
        for i in range(swaps):
            result = store.swap(paths[i % len(paths)])
            assert result.ok
    finally:
        stop.set()
        for t in readers:
            t.join(timeout=60.0)

    assert not any(t.is_alive() for t in readers)
    assert problems == []
    # every swap published: initial load + one version per swap call
    assert store.version == swaps + 1


def test_swap_failure_mid_load_keeps_readers_consistent(tmp_path):
    """Readers racing a writer that alternates good and bad swaps."""
    good = _tagged_checkpoint(tmp_path / "good", TAGS[1])
    store = ModelStore(_tagged_checkpoint(tmp_path / "init", TAGS[0]))
    problems: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            snap = store.snapshot()
            if snap.P[0, 0] not in TAGS or snap.P[0, 0] != snap.Q[0, 0]:
                problems.append(f"inconsistent snapshot v{snap.version}")
                return

    threads = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
    for t in threads:
        t.start()
    try:
        failures = 0
        for i in range(60):
            if i % 2 == 0:
                assert store.swap(good).ok
            else:
                failures += 1
                assert not store.swap(str(tmp_path / "missing")).ok
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=60.0)

    assert problems == []
    assert store.swap_failures() == failures
    assert store.version == 31   # 1 initial + 30 good swaps
