"""Unit tests for the cost-model drift report."""

import math

import pytest

from repro.hardware.timeline import Phase, Timeline
from repro.obs.drift import (
    DriftReport,
    DriftRow,
    HostRunInfo,
    compare,
    host_predictions,
    measured_phase_means,
    predictions_from_epoch_cost,
)


@pytest.fixture
def timeline():
    tl = Timeline()
    # two epochs: pull 0.1s/epoch, compute 0.5s/epoch
    for e in range(2):
        base = e * 1.0
        tl.add("worker-0", Phase.PULL, base, base + 0.1, epoch=e)
        tl.add("worker-0", Phase.COMPUTE, base + 0.1, base + 0.6, epoch=e)
        tl.add("worker-0", Phase.BARRIER, base + 0.6, base + 0.7, epoch=e)
        tl.add("server", Phase.SYNC, base + 0.7, base + 0.8, epoch=e)
    return tl


class TestMeasuredPhaseMeans:
    def test_means_are_per_epoch(self, timeline):
        means = measured_phase_means(timeline, epochs=2)
        mean, count = means[("worker-0", "pull")]
        assert mean == pytest.approx(0.1)
        assert count == 2

    def test_epochs_must_be_positive(self, timeline):
        with pytest.raises(ValueError):
            measured_phase_means(timeline, epochs=0)


class TestCompare:
    def test_joins_measured_and_predicted(self, timeline):
        report = compare(
            timeline,
            {("worker-0", "pull"): 0.08, ("worker-0", "computing"): 0.5},
            epochs=2,
        )
        pull = report.row("worker-0", "pull")
        assert pull.measured == pytest.approx(0.1)
        assert pull.rel_error == pytest.approx(0.25)
        assert report.row("worker-0", "computing").rel_error == pytest.approx(0.0)

    def test_barrier_and_eval_excluded(self, timeline):
        report = compare(timeline, {}, epochs=2)
        phases = {r.phase for r in report.rows}
        assert "barrier" not in phases
        assert phases <= {"pull", "computing", "push", "sync"}

    def test_unpredicted_phase_has_nan_rel_error(self, timeline):
        report = compare(timeline, {}, epochs=2)
        assert math.isnan(report.row("server", "sync").rel_error)

    def test_predicted_but_unmeasured_phase_kept(self, timeline):
        report = compare(timeline, {("worker-9", "push"): 0.5}, epochs=2)
        row = report.row("worker-9", "push")
        assert row.measured == 0.0
        assert row.spans == 0

    def test_worst_abs_rel_error(self, timeline):
        report = compare(
            timeline,
            {("worker-0", "pull"): 0.05, ("worker-0", "computing"): 0.5},
            epochs=2,
        )
        assert report.worst_abs_rel_error == pytest.approx(1.0)

    def test_render_and_to_dict(self, timeline):
        report = compare(timeline, {("worker-0", "pull"): 0.1}, epochs=2)
        text = report.render()
        assert "cost-model drift report" in text
        assert "worker-0" in text
        payload = report.to_dict()
        assert payload["epochs"] == 2
        assert any(r["phase"] == "pull" for r in payload["rows"])

    def test_missing_row_raises(self, timeline):
        report = compare(timeline, {}, epochs=2)
        with pytest.raises(KeyError):
            report.row("nobody", "pull")


class TestHostPredictions:
    @pytest.fixture
    def host(self):
        return HostRunInfo(
            worker_names=("worker-0", "worker-1"),
            shard_nnz=(1000, 3000),
            k=16,
            m=100,
            n=50,
            epochs=2,
        )

    def test_eq2_eq3_shapes(self, host):
        preds = host_predictions(host, bandwidth_gbs=10.0, updates_per_second=1e6)
        q_bytes = 4 * 16 * 50
        copy_s = q_bytes / 10e9
        assert preds[("worker-0", "pull")] == pytest.approx(copy_s)
        assert preds[("worker-0", "push")] == pytest.approx(copy_s)
        # compute scales with shard nnz (Eq. 2)
        assert preds[("worker-1", "computing")] == pytest.approx(3000 / 1e6)
        # sync: three memory ops per worker (Eq. 3)
        assert preds[("server", "sync")] == pytest.approx(3 * q_bytes * 2 / 10e9)

    def test_invalid_rates_rejected(self, host):
        with pytest.raises(ValueError):
            host_predictions(host, bandwidth_gbs=0, updates_per_second=1e6)
        with pytest.raises(ValueError):
            host_predictions(host, bandwidth_gbs=1.0, updates_per_second=0)


class TestEpochCostPredictions:
    def test_flattens_modeled_cost(self):
        from repro.core.config import HCCConfig
        from repro.core.framework import HCCMF
        from repro.data.datasets import NETFLIX
        from repro.hardware.topology import paper_workstation

        hcc = HCCMF(paper_workstation(16), NETFLIX, HCCConfig(k=64, epochs=1))
        hcc.prepare()
        cost = hcc.cost_model.epoch_cost(hcc.plan.fractions)
        preds = predictions_from_epoch_cost(cost)
        for wc in cost.workers:
            assert preds[(wc.name, "pull")] == pytest.approx(wc.pull)
            assert preds[(wc.name, "computing")] == pytest.approx(wc.compute)
        assert preds[("server", "sync")] == pytest.approx(
            cost.sync_time_each * len(cost.workers)
        )


class TestDriftRow:
    def test_rel_error_nan_when_unpredicted(self):
        row = DriftRow("w", "pull", predicted=0.0, measured=0.5, spans=1)
        assert math.isnan(row.rel_error)

    def test_empty_report_worst_is_nan(self):
        report = DriftReport(rows=(), epochs=1)
        assert math.isnan(report.worst_abs_rel_error)
        assert "drift report" in report.render()
