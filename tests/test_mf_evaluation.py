"""Unit tests for recommendation-quality evaluation."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.mf.evaluation import (
    RankingReport,
    candidate_ndcg,
    evaluate_ranking,
    mae,
    recommend_top_n,
)
from repro.mf.model import MFModel
from repro.mf.sgd import HogwildSGD


@pytest.fixture(scope="module")
def trained():
    from repro.data.datasets import NETFLIX

    full = NETFLIX.scaled(15_000).generate(seed=9)
    train, test = full.split(0.15, seed=9)
    h = HogwildSGD(k=12, lr=0.01, reg=0.01, seed=9)
    h.fit(train, epochs=12)
    return h.model, train, test


class TestMae:
    def test_zero_for_exact_model(self):
        p = np.eye(2, dtype=np.float32)
        q = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        model = MFModel(p, q)
        r = RatingMatrix.from_dense(p @ q)
        assert mae(model, r) == pytest.approx(0.0, abs=1e-6)

    def test_leq_rmse(self, trained):
        model, train, _ = trained
        assert mae(model, train) <= model.rmse(train) + 1e-9

    def test_empty(self):
        model = MFModel.init(3, 3, 2)
        assert mae(model, RatingMatrix(3, 3, [], [], [])) == 0.0


class TestTopN:
    def test_scores_sorted_descending(self, trained):
        model, _, _ = trained
        items, scores = recommend_top_n(model, 0, n=8)
        assert len(items) == 8
        assert np.all(np.diff(scores) <= 1e-6)

    def test_exclusion(self, trained):
        model, _, _ = trained
        items_all, _ = recommend_top_n(model, 0, n=5)
        items_ex, _ = recommend_top_n(model, 0, n=5, exclude=items_all[:2])
        assert not set(items_all[:2].tolist()) & set(items_ex.tolist())

    def test_n_capped_at_catalog(self):
        model = MFModel.init(4, 3, 2, seed=0)
        items, _ = recommend_top_n(model, 0, n=10)
        assert len(items) == 3

    def test_top1_is_argmax(self):
        model = MFModel.init(5, 20, 3, seed=1)
        items, _ = recommend_top_n(model, 2, n=1)
        scores = model.P[2] @ model.Q
        assert items[0] == np.argmax(scores)

    def test_validation(self):
        model = MFModel.init(4, 3, 2)
        with pytest.raises(IndexError):
            recommend_top_n(model, 10)
        with pytest.raises(ValueError):
            recommend_top_n(model, 0, n=0)


class TestEvaluateRanking:
    def test_report_shape(self, trained):
        model, train, test = trained
        report = evaluate_ranking(model, train, test, n=10, max_users=100)
        assert isinstance(report, RankingReport)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.ndcg <= 1.0
        assert 0.0 < report.coverage <= 1.0
        assert report.users_evaluated > 0

    def test_trained_beats_random_on_candidate_ranking(self, trained):
        """Catalog-level top-N has no signal on small synthetic data
        (relevance is near-uniform over unseen items), so the trained-vs-
        random comparison uses candidate ranking: order each user's own
        held-out items by prediction."""
        model, _, test = trained
        good = candidate_ndcg(model, test, max_users=300, seed=1)
        random_model = MFModel(
            np.random.default_rng(0).standard_normal(model.P.shape).astype(np.float32),
            np.random.default_rng(1).standard_normal(model.Q.shape).astype(np.float32),
        )
        bad = candidate_ndcg(random_model, test, max_users=300, seed=1)
        assert good > bad

    def test_candidate_ndcg_perfect_model(self):
        """A model that reproduces the ratings exactly ranks perfectly."""
        p = np.eye(3, dtype=np.float32)
        q = np.array(
            [[5.0, 1.0, 3.0, 2.0], [4.0, 2.0, 5.0, 1.0], [1.0, 5.0, 2.0, 4.0]],
            dtype=np.float32,
        )
        model = MFModel(p, q)
        test = RatingMatrix.from_dense(p @ q)
        assert candidate_ndcg(model, test) == pytest.approx(1.0)

    def test_candidate_ndcg_requires_rankable_users(self):
        model = MFModel.init(3, 3, 2)
        single = RatingMatrix(3, 3, [0], [1], [3.0])
        with pytest.raises(ValueError, match=">= 2 held-out"):
            candidate_ndcg(model, single)

    def test_threshold_effect(self, trained):
        model, train, test = trained
        strict = evaluate_ranking(model, train, test, relevant_threshold=5.0, max_users=100)
        lax = evaluate_ranking(model, train, test, relevant_threshold=1.0, max_users=100)
        # more relevant items -> recall denominator grows
        assert lax.users_evaluated >= strict.users_evaluated

    def test_empty_test_rejected(self, trained):
        model, train, _ = trained
        with pytest.raises(ValueError):
            evaluate_ranking(model, train, RatingMatrix(model.m, model.n, [], [], []))
