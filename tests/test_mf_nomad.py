"""Unit tests for the NOMAD baseline."""

import pytest

from repro.mf.nomad import NOMAD


class TestNOMAD:
    def test_converges(self, small_ratings):
        n = NOMAD(k=8, workers=3, lr=0.01, reg=0.01, seed=0)
        n.fit(small_ratings, epochs=4)
        assert n.history.rmse[-1] < n.history.rmse[0]

    def test_every_column_visits_every_worker(self, small_ratings):
        """One epoch circulates each column through all workers, so the
        message count is exactly n * (workers - 1) per epoch."""
        workers = 3
        n = NOMAD(k=4, workers=workers, seed=0)
        n.fit(small_ratings, epochs=1)
        assert n.column_messages == small_ratings.n * (workers - 1)

    def test_message_bytes_scale_with_k(self, small_ratings):
        a = NOMAD(k=4, workers=2, seed=0)
        b = NOMAD(k=8, workers=2, seed=0)
        a.fit(small_ratings, epochs=1)
        b.fit(small_ratings, epochs=1)
        assert b.message_bytes() == 2 * a.message_bytes()

    def test_message_overhead_vs_hcc(self, small_ratings):
        """The paper's section-5 critique quantified: NOMAD sends
        n*(w-1) fine-grained column messages per epoch where HCC-MF's
        COMM sends 2 bulk transfers per worker, so NOMAD's per-message
        software overhead dominates its communication bill."""
        workers = 4
        nomad = NOMAD(k=16, workers=workers, seed=0)
        nomad.fit(small_ratings, epochs=1)
        hcc_messages = 2 * workers  # one pull + one push per worker
        assert nomad.column_messages > 50 * hcc_messages
        # at any realistic per-message cost the overhead gap is the story
        per_message_s = 5e-6
        nomad_overhead = nomad.column_messages * per_message_s
        hcc_overhead = hcc_messages * per_message_s
        assert nomad_overhead > 50 * hcc_overhead

    def test_single_worker_no_messages(self, small_ratings):
        n = NOMAD(k=4, workers=1, seed=0)
        n.fit(small_ratings, epochs=1)
        assert n.column_messages == 0

    def test_queue_imbalance_reported(self, small_ratings):
        n = NOMAD(k=4, workers=3, seed=0)
        n.fit(small_ratings, epochs=1)
        assert n.queue_imbalance() >= 1.0

    def test_queue_imbalance_requires_fit(self):
        with pytest.raises(RuntimeError):
            NOMAD(k=4).queue_imbalance()

    def test_validation(self):
        with pytest.raises(ValueError):
            NOMAD(k=0)
        with pytest.raises(ValueError):
            NOMAD(k=4, workers=0)

    def test_deterministic(self, small_ratings):
        a = NOMAD(k=4, workers=2, lr=0.01, seed=3)
        b = NOMAD(k=4, workers=2, lr=0.01, seed=3)
        a.fit(small_ratings, epochs=2)
        b.fit(small_ratings, epochs=2)
        assert a.history.rmse == b.history.rmse
