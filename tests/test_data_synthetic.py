"""Unit tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.data.synthetic import (
    SyntheticConfig,
    extend_uniform,
    generate_low_rank,
    sample_sparsity_pattern,
)


class TestConfig:
    def test_valid(self):
        cfg = SyntheticConfig(m=10, n=8, nnz=30)
        assert cfg.rank == 8

    def test_nnz_over_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SyntheticConfig(m=3, n=3, nnz=10)

    def test_bad_rating_range(self):
        with pytest.raises(ValueError, match="rating_max"):
            SyntheticConfig(m=3, n=3, nnz=5, rating_min=5, rating_max=1)

    def test_nonpositive_rank(self):
        with pytest.raises(ValueError, match="rank"):
            SyntheticConfig(m=3, n=3, nnz=5, rank=0)


class TestSparsityPattern:
    def test_exact_count_and_unique(self, rng):
        rows, cols = sample_sparsity_pattern(50, 40, 300, rng)
        assert len(rows) == len(cols) == 300
        keys = rows * 40 + cols
        assert len(np.unique(keys)) == 300

    def test_bounds(self, rng):
        rows, cols = sample_sparsity_pattern(20, 30, 100, rng, row_skew=1.0, col_skew=1.0)
        assert rows.min() >= 0 and rows.max() < 20
        assert cols.min() >= 0 and cols.max() < 30

    def test_dense_regime(self, rng):
        rows, cols = sample_sparsity_pattern(5, 5, 24, rng)
        keys = rows * 5 + cols
        assert len(np.unique(keys)) == 24

    def test_full_matrix(self, rng):
        rows, cols = sample_sparsity_pattern(4, 4, 16, rng)
        assert len(rows) == 16

    def test_over_capacity(self, rng):
        with pytest.raises(ValueError):
            sample_sparsity_pattern(3, 3, 10, rng)

    def test_skew_concentrates_traffic(self, rng):
        _, cols_flat = sample_sparsity_pattern(300, 300, 3000, rng, col_skew=0.0)
        _, cols_skew = sample_sparsity_pattern(300, 300, 3000, rng, col_skew=1.2)
        top_flat = np.sort(np.bincount(cols_flat, minlength=300))[-10:].sum()
        top_skew = np.sort(np.bincount(cols_skew, minlength=300))[-10:].sum()
        assert top_skew > top_flat


class TestLowRankGeneration:
    def test_shape_and_scale(self):
        cfg = SyntheticConfig(m=60, n=50, nnz=400, rating_min=1, rating_max=5)
        r = generate_low_rank(cfg, seed=0)
        assert r.shape == (60, 50)
        assert r.nnz == 400
        assert r.vals.min() >= 1.0
        assert r.vals.max() <= 5.0

    def test_quantization(self):
        cfg = SyntheticConfig(m=40, n=40, nnz=200, rating_step=0.5)
        r = generate_low_rank(cfg, seed=1)
        steps = (r.vals / 0.5) - np.round(r.vals / 0.5)
        np.testing.assert_allclose(steps, 0.0, atol=1e-5)

    def test_no_quantization(self):
        cfg = SyntheticConfig(m=40, n=40, nnz=300, rating_step=0.0)
        r = generate_low_rank(cfg, seed=1)
        frac = r.vals - np.round(r.vals)
        assert np.any(np.abs(frac) > 1e-4)

    def test_deterministic(self):
        cfg = SyntheticConfig(m=30, n=30, nnz=150)
        a = generate_low_rank(cfg, seed=7)
        b = generate_low_rank(cfg, seed=7)
        np.testing.assert_array_equal(a.vals, b.vals)
        np.testing.assert_array_equal(a.rows, b.rows)

    def test_seed_changes_data(self):
        cfg = SyntheticConfig(m=30, n=30, nnz=150)
        a = generate_low_rank(cfg, seed=7)
        b = generate_low_rank(cfg, seed=8)
        assert not np.array_equal(a.rows, b.rows)

    def test_low_rank_structure_learnable(self):
        """The generated data should be approximable by low-rank factors:
        the best rank-r SVD of the dense completion explains most of the
        observed variance."""
        cfg = SyntheticConfig(m=40, n=30, nnz=900, rank=4, noise=0.02)
        r = generate_low_rank(cfg, seed=3)
        dense = r.to_dense()
        u, s, vt = np.linalg.svd(dense, full_matrices=False)
        energy = (s[:6] ** 2).sum() / (s**2).sum()
        assert energy > 0.85


class TestExtendUniform:
    def test_grows_to_target(self, tiny_ratings):
        out = extend_uniform(tiny_ratings, 20, seed=0)
        assert out.nnz == 20
        assert out.shape == tiny_ratings.shape

    def test_keeps_existing_entries(self, tiny_ratings):
        out = extend_uniform(tiny_ratings, 20, seed=0)
        old = set(zip(tiny_ratings.rows.tolist(), tiny_ratings.cols.tolist()))
        new = set(zip(out.rows.tolist(), out.cols.tolist()))
        assert old <= new

    def test_no_duplicates(self, tiny_ratings):
        out = extend_uniform(tiny_ratings, 25, seed=1)
        keys = out.rows * out.n + out.cols
        assert len(np.unique(keys)) == out.nnz

    def test_noop_at_current_size(self, tiny_ratings):
        assert extend_uniform(tiny_ratings, tiny_ratings.nnz) is tiny_ratings

    def test_shrink_rejected(self, tiny_ratings):
        with pytest.raises(ValueError, match="smaller"):
            extend_uniform(tiny_ratings, 5)

    def test_new_values_within_observed_range(self, tiny_ratings):
        out = extend_uniform(tiny_ratings, 24, seed=2)
        assert out.vals.min() >= tiny_ratings.vals.min() - 1e-6
        assert out.vals.max() <= tiny_ratings.vals.max() + 1e-6
