"""Tests for the model-vs-closed-form crosschecks."""

import pytest

from repro.data.datasets import MOVIELENS_20M, NETFLIX, YAHOO_R1
from repro.experiments.crosscheck import (
    crosscheck_model_vs_formulas,
    wire_bytes_identity,
)


class TestCrosscheck:
    @pytest.fixture(scope="class")
    def result(self):
        return crosscheck_model_vs_formulas()

    def test_eq3_sync_exact(self, result):
        rows = result.row_map()
        assert rows["Eq.3 sync time (P&Q)"][3] < 1e-9

    def test_strategy3_law_exact_when_compute_bound(self, result):
        rows = result.row_map()
        assert rows["Strategy 3 exposed comm (compute-bound)"][3] < 1e-9

    def test_dp0_is_theorem1_equalizer(self, result):
        rows = result.row_map()
        assert rows["Eq.6 DP0 vs Theorem 1 equalizer"][3] < 1e-9

    def test_eq2_ratio_within_order_slack(self, result):
        """The paper's Eq. 2 ratio is an order-of-magnitude argument; the
        derived one-way form should land within ~25% (bus latency and
        the k-constant 16k vs 16k+4 account for the residue)."""
        rows = result.row_map()
        assert rows["Eq.2 comm/compute ratio (GPU, P&Q, one-way)"][3] < 0.25

    def test_other_datasets_run(self):
        for spec in (YAHOO_R1, MOVIELENS_20M):
            r = crosscheck_model_vs_formulas(spec)
            assert len(r.rows) == 4


class TestWireBytesIdentity:
    def test_q_only_reduction_matches_paper_formula(self):
        """Strategy 1's reduction is exactly n/(m+n) (paper: 96.4% saved
        on Netflix)."""
        ratios = wire_bytes_identity(NETFLIX)
        assert ratios["q_over_pq"] == pytest.approx(ratios["paper_q_over_pq"])
        assert 1 - ratios["q_over_pq"] == pytest.approx(0.964, abs=0.001)

    def test_fp16_exactly_halves(self):
        assert wire_bytes_identity(NETFLIX)["fp16_factor"] == pytest.approx(2.0)

    def test_square_matrix_lower_bound(self):
        """The reduction bottoms out at 1/2 when m = n (section 3.4)."""
        from repro.data.datasets import DatasetSpec

        square = DatasetSpec(name="sq", m=5000, n=5000, nnz=50_000)
        ratios = wire_bytes_identity(square)
        assert ratios["q_over_pq"] == pytest.approx(0.5)
