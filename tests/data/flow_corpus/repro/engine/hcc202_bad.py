"""Known-bad exception-safety patterns (HCC202).

This file sits under a ``repro/engine/`` corpus path because HCC202 is
scoped to the engine/resilience modules.
"""


class TornSyncBackend:
    def merge_then_validate(self, payloads):
        # merging before validating means a bad payload raises with Q
        # half-mutated and no restore on the path
        self.model.Q += payloads[0]
        if not self.ok(payloads):
            raise ValueError("torn payload")  # expect: HCC202

    def copy_then_bail(self, np, payloads):
        np.copyto(self.model.P, payloads[0])
        if not self.ok(payloads):
            raise ValueError("torn payload")  # expect: HCC202


class LeakyAttemptEngine:
    def attempt_without_finally(self, model, plan, epochs):
        self.backend.open(model, plan, epochs)  # expect: HCC202
        for epoch in range(epochs):
            self.backend.pull(epoch)
        # any exception in the loop escapes with the attempt open
        self.backend.close()
