"""Exception-safe engine patterns HCC202 must pass clean."""


class SafeSyncBackend:
    def validate_then_merge(self, payloads):
        if not self.ok(payloads):
            raise ValueError("torn payload")
        self.model.Q += payloads[0]

    def restore_before_raise(self, payloads):
        self.model.P[:] = payloads[0]
        if not self.ok(payloads):
            self._restore_p()
            raise ValueError("torn payload")

    def snapshot_copyto_restore(self, np, payloads):
        self.model.P[:] = payloads[0]
        if not self.ok(payloads):
            np.copyto(self.model.P, self._p_snapshot)
            raise ValueError("torn payload")


class SafeAttemptEngine:
    def attempt_with_finally(self, model, plan, epochs):
        self.backend.open(model, plan, epochs)
        try:
            for epoch in range(epochs):
                self.backend.pull(epoch)
        finally:
            self.backend.close()
