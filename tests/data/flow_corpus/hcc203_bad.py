"""Known-bad float64 flows into FP32 kernel arguments (HCC203)."""

import numpy as np

from repro.mf.kernels import sgd_epoch


def taints_through_assignment(model, batch):
    lr_schedule = np.zeros(8, dtype=np.float64)
    scaled = lr_schedule * 0.5  # NumPy promotion keeps float64
    sgd_epoch(model, batch, scaled)  # expect: HCC203


def taints_through_helper(model, batch):
    rates = _double_rates()
    sgd_epoch(model, batch, rates)  # expect: HCC203


def _double_rates():
    return np.linspace(0.0, 1.0, 8, dtype=np.float64)


def explicit_cast_upward(model, batch, rates):
    wide = rates.astype(np.float64)
    sgd_epoch(model, batch, wide)  # expect: HCC203


def python_float_dtype(model, batch):
    # dtype=float is float64 in NumPy
    biases = np.zeros(8, dtype=float)
    sgd_epoch(model, batch, biases)  # expect: HCC203
