"""Known-bad backend stage orderings (HCC204)."""


def push_before_compute(backend, epoch):
    backend.pull(epoch)
    backend.push(epoch)  # expect: HCC204
    backend.sync(epoch)


def double_pull(backend, epoch):
    backend.pull(epoch)
    backend.pull(epoch)  # expect: HCC204


def sync_without_push(backend, epoch):
    backend.pull(epoch)
    backend.compute(epoch)
    backend.sync(epoch)  # expect: HCC204


def finalize_mid_epoch(backend, telemetry, epoch):
    backend.pull(epoch)
    backend.compute(epoch)
    backend.finalize(telemetry)  # expect: HCC204


def pull_before_open(backend_cls, model, plan):
    backend = backend_cls.SimBackend(model, plan)
    backend.pull(0)  # expect: HCC204
