"""Correct resource lifecycles HCC201 must pass clean."""

import os
from multiprocessing import shared_memory

from repro.parallel.shm import SharedArray


def closes_in_finally(nbytes, risky):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        risky(shm.name)
    finally:
        shm.close()
        shm.unlink()


def cleanup_in_except_then_reraise(nbytes, risky):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        risky(shm.name)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    shm.close()
    shm.unlink()


def _consume(shm):
    try:
        return bytes(shm.buf[:1])
    finally:
        shm.close()


def hands_off_to_closing_helper(nbytes):
    # _consume's summary says it closes its parameter on every path
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return _consume(shm)


def registers_cleanup_callback(stack, nbytes):
    buf = SharedArray.create((nbytes,), "float32")
    stack.callback(buf.unlink)
    return buf


def crash_atomic_write(target, payload):
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


def managed_by_with(spec):
    with SharedArray.attach(spec) as arr:
        return arr.array.sum()
