"""Dtype-correct kernel callers HCC203 must pass clean."""

import numpy as np

from repro.mf.kernels import sgd_epoch


def casts_before_kernel(model, batch):
    lr_schedule = np.zeros(8, dtype=np.float64)
    scaled = (lr_schedule * 0.5).astype(np.float32)
    sgd_epoch(model, batch, scaled)


def float32_throughout(model, batch):
    rates = np.zeros(8, dtype=np.float32)
    sgd_epoch(model, batch, rates)


def branch_taint_cleared_on_both_paths(model, batch, wide):
    if wide:
        rates = np.zeros(8, dtype=np.float64).astype(np.float32)
    else:
        rates = np.zeros(8, dtype=np.float32)
    sgd_epoch(model, batch, rates)


def stats_may_use_float64(history):
    # float64 away from kernels is fine: only the sink is guarded
    mean = np.zeros(8, dtype=np.float64)
    return mean + np.asarray(history, dtype=np.float64)
