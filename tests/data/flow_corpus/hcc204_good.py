"""Protocol-conforming backend drivers HCC204 must pass clean."""


def full_epoch_loop(backend, model, plan, epochs):
    backend.open(model, plan)
    try:
        for epoch in range(epochs):
            backend.pull(epoch)
            backend.compute(epoch)
            backend.push(epoch)
            backend.sync(epoch)
            backend.evaluate(epoch)
        backend.finalize(None)
    finally:
        backend.close()


def hands_backend_to_engine(backend, engine_cls):
    # passing the backend away resets tracking: the engine drives it
    backend.open(1, 2)
    engine = engine_cls(backend)
    engine.run()
    backend.close()


def close_is_legal_anywhere(backend, epoch):
    backend.pull(epoch)
    backend.close()
