"""Known-bad resource lifecycles the flow engine must flag (HCC201).

Each ``# expect: HCCnnn`` marks the line a finding must be reported on;
the corpus test fails if any expected finding is missing *or* any
unexpected one appears.
"""

import os
from multiprocessing import shared_memory


def leaks_on_exception_path(nbytes, risky):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)  # expect: HCC201
    risky(shm.name)  # if this raises, the segment leaks until reboot
    shm.close()
    shm.unlink()


def leaks_on_branch(nbytes, flag):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)  # expect: HCC201
    if flag:
        shm.close()
        shm.unlink()
    # the flag=False path falls off the end with the segment open


def rebinds_while_open(nbytes):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    shm = shared_memory.SharedMemory(create=True, size=nbytes)  # expect: HCC201
    shm.close()
    shm.unlink()


def tmp_checkpoint_not_crash_atomic(target, payload):
    tmp = target.with_name(target.name + ".tmp")  # expect: HCC201
    with open(tmp, "wb") as fh:
        fh.write(payload)
    # a crash before os.replace leaves the .tmp file behind: the
    # cleanup must live in a finally block
    os.replace(tmp, target)
