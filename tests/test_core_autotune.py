"""Unit tests for the configuration auto-tuner."""

import pytest

from repro.core.autotune import (
    COLLABORATION_REUSE_BOUND,
    TuningReport,
    autotune,
    tuned_config,
)
from repro.core.config import TransmitMode
from repro.data.datasets import MOVIELENS_20M, NETFLIX, YAHOO_R1
from repro.hardware.topology import paper_workstation


@pytest.fixture(scope="module")
def platform():
    return paper_workstation(16)


class TestAutotune:
    def test_ranking_sorted(self, platform):
        report = autotune(platform, NETFLIX)
        times = [t.total_time for t in report.ranking]
        assert times == sorted(times)
        assert report.best is report.ranking[0]

    def test_best_beats_pq(self, platform):
        """Whatever wins must beat the unoptimized P&Q baseline."""
        report = autotune(platform, NETFLIX)
        pq = [
            t for t in report.ranking
            if t.config.comm.transmit is TransmitMode.P_AND_Q
            and not t.config.comm.fp16
            and t.config.comm.streams == 1
        ][0]
        assert report.best.total_time < pq.total_time

    def test_rotation_can_be_excluded(self, platform):
        report = autotune(platform, MOVIELENS_20M, include_rotation=False)
        assert all(
            t.config.comm.transmit is not TransmitMode.Q_ROTATE
            for t in report.ranking
        )

    def test_movielens_advice_flags_low_reuse(self, platform):
        report = autotune(platform, MOVIELENS_20M)
        assert "below the ~1e3 bound" in report.advice
        assert report.reuse_ratio < 200  # nnz/min(m,n) ~ 152

    def test_netflix_advice_comfortable(self, platform):
        # Netflix's post-Q-only reuse nnz/min(m,n) ~ 5.6e3: compute-bound
        report = autotune(platform, NETFLIX)
        assert report.collaboration_worthwhile
        assert report.reuse_ratio > COLLABORATION_REUSE_BOUND
        assert "comfortably exceeds" in report.advice

    def test_r1_prefers_comm_optimizations(self, platform):
        report = autotune(platform, YAHOO_R1, include_rotation=False)
        best = report.best.config.comm
        # R1 is comm/sync heavy: plain Q-only with 1 stream must not win
        assert best.fp16 or best.streams > 1

    def test_candidate_count(self, platform):
        report = autotune(platform, NETFLIX, stream_options=(1, 4))
        # 3 transmit modes x 2 fp16 x 2 stream options
        assert len(report.ranking) == 12

    def test_invalid_epochs(self, platform):
        with pytest.raises(ValueError):
            autotune(platform, NETFLIX, epochs=0)


class TestTunedConfig:
    def test_returns_config_with_overrides(self, platform):
        cfg = tuned_config(platform, NETFLIX, epochs=20, seed=42)
        assert cfg.seed == 42
        assert cfg.epochs == 20

    def test_labels_informative(self, platform):
        report = autotune(platform, NETFLIX, stream_options=(1, 4))
        labels = {t.label for t in report.ranking}
        assert any("fp16" in l for l in labels)
        assert any("4s" in l for l in labels)

    def test_report_type(self, platform):
        assert isinstance(autotune(platform, NETFLIX), TuningReport)
