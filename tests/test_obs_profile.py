"""Unit tests for stage-attributed profiling (repro.obs.profile)."""

import cProfile
import os

import pytest

from repro.obs.bench import kernel_workload
from repro.obs.profile import (
    ENGINE_STAGES,
    HotpathEntry,
    StageProfileReport,
    StageProfiler,
    WorkerStageProfiles,
)


def _busy(n=20_000):
    return sum(i * i for i in range(n))


class TestStageProfiler:
    def test_stage_scopes_accumulate(self):
        prof = StageProfiler()
        for _ in range(2):
            with prof.stage("compute"):
                _busy()
        report = prof.report()
        assert report.stage_seconds["compute"] > 0
        assert report.attributed_fraction == 1.0

    def test_entries_name_profiled_functions(self):
        prof = StageProfiler()
        with prof.stage("compute"):
            _busy()
        report = prof.report()
        assert any("_busy" in e.function for e in report.entries)
        assert all(e.stage == "compute" for e in report.entries)

    def test_unknown_stage_counts_as_unattributed(self):
        prof = StageProfiler()
        with prof.stage("compute"):
            _busy()
        with prof.stage("mystery"):
            _busy()
        report = prof.report()
        assert report.unattributed_seconds > 0
        assert "mystery" not in report.stage_seconds
        assert report.attributed_fraction < 1.0

    def test_worker_dumps_merge_into_report(self, tmp_path):
        # simulate what a worker process does: accumulate + dump
        worker = WorkerStageProfiles()
        with worker.stage("compute"):
            _busy()
        with worker.stage("pull"):
            _busy(2_000)
        dump_dir = tmp_path / "attempt-0"
        dump_dir.mkdir()
        worker.dump(str(dump_dir), worker_id=0)
        assert sorted(os.listdir(dump_dir)) == [
            "worker-0.compute.pstats", "worker-0.pull.pstats",
        ]
        prof = StageProfiler()
        prof._workdir = str(tmp_path)
        report = prof.report()
        assert report.stage_seconds["compute"] > 0
        assert report.stage_seconds["pull"] > 0
        assert report.attributed_fraction == 1.0

    def test_unknown_worker_dump_stage_unattributed(self, tmp_path):
        p = cProfile.Profile()
        p.enable()
        _busy()
        p.disable()
        p.dump_stats(str(tmp_path / "worker-0.warmup.pstats"))
        prof = StageProfiler()
        prof._workdir = str(tmp_path)
        report = prof.report()
        assert report.unattributed_seconds > 0

    def test_cleanup_removes_workdir(self):
        prof = StageProfiler()
        d = prof.worker_dir()
        assert os.path.isdir(d)
        prof.cleanup()
        assert not os.path.isdir(d)
        prof.cleanup()  # idempotent

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            StageProfiler(max_entries_per_stage=0)


class TestStageProfileReport:
    def _report(self):
        return StageProfileReport(
            stage_seconds={"pull": 0.1, "compute": 0.8},
            entries=[
                HotpathEntry("compute", "f (m.py:1)", 4, 0.5, 0.8),
                HotpathEntry("pull", "g (m.py:9)", 2, 0.1, 0.1),
            ],
            unattributed_seconds=0.1,
        )

    def test_attribution_math(self):
        report = self._report()
        assert report.total_seconds == pytest.approx(1.0)
        assert report.attributed_fraction == pytest.approx(0.9)

    def test_empty_report_fully_attributed(self):
        assert StageProfileReport({}, []).attributed_fraction == 1.0

    def test_top_sorted_by_cumtime(self):
        top = self._report().top(1)
        assert top[0].function.startswith("f")

    def test_render_names_stages_and_hotpaths(self):
        text = self._report().render(top_n=2)
        assert "compute" in text and "pull" in text
        assert "f (m.py:1)" in text
        assert "90.0% attributed" in text

    def test_dict_round_trip(self):
        report = self._report()
        back = StageProfileReport.from_dict(report.to_dict())
        assert back.stage_seconds == report.stage_seconds
        assert back.entries == report.entries
        assert back.unattributed_seconds == report.unattributed_seconds

    def test_save_load_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "hotpaths.json"
        report.save(path)
        back = StageProfileReport.load(path)
        assert back.attributed_fraction == pytest.approx(
            report.attributed_fraction
        )

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            StageProfileReport.from_dict({"schema": "other", "entries": []})


class TestEngineIntegration:
    """The acceptance criterion: >=90% of profiled time lands in named
    engine stages on both planes."""

    def test_sim_plane_attribution(self):
        from repro.engine import EpochEngine, QOnlyChannel, SimBackend
        from repro.experiments.platforms import workers_platform

        ratings = kernel_workload(2000, 0)
        prof = StageProfiler()
        backend = SimBackend(
            workers_platform(2), ratings=ratings, eval_data=ratings,
            k=8, seed=0, batch_size=1024,
        )
        EpochEngine(backend, channel=QOnlyChannel(), profile=prof).run(2)
        report = prof.report()
        prof.cleanup()
        assert report.attributed_fraction >= 0.9
        for stage in ENGINE_STAGES:
            assert report.stage_seconds.get(stage, 0.0) > 0.0
        # the sim plane's hot path is the SGD kernel, under compute
        compute = [e for e in report.entries if e.stage == "compute"]
        assert any("sgd" in e.function for e in compute)

    def test_process_plane_attribution_with_worker_dumps(self):
        from repro.parallel.executor import SharedMemoryTrainer

        ratings = kernel_workload(2000, 0)
        prof = StageProfiler()
        try:
            SharedMemoryTrainer(
                ratings, k=8, n_workers=2, seed=0, batch_size=1024,
                profile=prof,
            ).train(2)
            workdir = prof.worker_dir()
            dumps = [
                fn
                for _, _, files in os.walk(workdir)
                for fn in files
                if fn.endswith(".pstats")
            ]
            # both workers dumped pull/compute/push
            assert len(dumps) == 6
            report = prof.report()
        finally:
            prof.cleanup()
        assert report.attributed_fraction >= 0.9
        for stage in ENGINE_STAGES:
            assert report.stage_seconds.get(stage, 0.0) > 0.0
        # worker-side training shows up under compute
        compute = [e for e in report.entries if e.stage == "compute"]
        assert any("_train_shard" in e.function for e in compute)

    def test_unprofiled_run_unchanged(self):
        from repro.engine import EpochEngine, QOnlyChannel, SimBackend
        from repro.experiments.platforms import workers_platform

        ratings = kernel_workload(2000, 0)

        def run(profile):
            backend = SimBackend(
                workers_platform(2), ratings=ratings, eval_data=ratings,
                k=8, seed=0, batch_size=1024,
            )
            return EpochEngine(
                backend, channel=QOnlyChannel(), profile=profile
            ).run(2)

        prof = StageProfiler()
        with_prof = run(prof)
        prof.cleanup()
        without = run(None)
        assert with_prof.rmse_history == without.rmse_history
        assert with_prof.stage_sequence() == without.stage_sequence()
