"""Unit tests for processor/bus specifications and the catalog."""

import pytest

from repro.hardware.specs import (
    BUS_CATALOG,
    BusKind,
    BusSpec,
    PCIE3_X16,
    PROCESSOR_CATALOG,
    ProcessorKind,
    ProcessorSpec,
    QPI,
    RTX_2080,
    RTX_2080S,
    SHARED_MEMORY,
    TESLA_V100,
    UPI,
    XEON_6242,
    XEON_6242L_10T,
)


class TestBusSpec:
    def test_transfer_time_linear_in_bytes(self):
        t1 = PCIE3_X16.transfer_time(1e9)
        t2 = PCIE3_X16.transfer_time(2e9)
        assert t2 > t1
        assert (t2 - t1) == pytest.approx(1e9 / (15.75e9), rel=1e-6)

    def test_transfer_includes_latency(self):
        assert PCIE3_X16.transfer_time(0) == pytest.approx(5e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE3_X16.transfer_time(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            BusSpec("bad", BusKind.PCIE, 0.0)

    def test_paper_bandwidths(self):
        # section 3.3: x16 PCI-E Gen3 ~16 GB/s, QPI 16-20.8 GB/s
        assert 15.0 <= PCIE3_X16.bandwidth_gbs <= 16.0
        assert QPI.bandwidth_gbs == 16.0
        assert UPI.bandwidth_gbs == pytest.approx(20.8)
        assert SHARED_MEMORY.bandwidth_gbs > UPI.bandwidth_gbs


class TestProcessorSpec:
    def test_kinds(self):
        assert XEON_6242.is_cpu and not XEON_6242.is_gpu
        assert RTX_2080.is_gpu and not RTX_2080.is_cpu

    def test_table4_netflix_rates_encoded(self):
        assert XEON_6242.base_rate_k128 == pytest.approx(272_502_189, rel=1e-3)
        assert RTX_2080.base_rate_k128 == pytest.approx(918_333_483, rel=1e-3)
        assert RTX_2080S.base_rate_k128 == pytest.approx(1_052_866_849, rel=1e-3)

    def test_table2_bandwidth_anchors(self):
        assert XEON_6242.dram_bandwidth(16) == pytest.approx(67.30)
        assert XEON_6242.dram_bandwidth(10) == pytest.approx(39.32)
        assert RTX_2080.dram_bandwidth() == pytest.approx(378.62)
        assert RTX_2080S.dram_bandwidth() == pytest.approx(407.10)

    def test_bandwidth_interpolation(self):
        mid = XEON_6242.dram_bandwidth(13)
        assert 39.32 < mid < 67.30

    def test_bandwidth_saturates(self):
        assert XEON_6242.dram_bandwidth(24) == pytest.approx(67.30)
        assert XEON_6242.dram_bandwidth(100) == pytest.approx(67.30)
        assert XEON_6242.dram_bandwidth(1) == pytest.approx(39.32)

    def test_gpu_has_copy_engines_and_memory(self):
        for gpu in (RTX_2080, RTX_2080S, TESLA_V100):
            assert gpu.copy_engines == 2
            assert gpu.memory_gb > 0

    def test_v100_memory_larger(self):
        assert TESLA_V100.memory_gb > RTX_2080.memory_gb

    def test_prices_match_fig3b_shape(self):
        # Figure 3(b): the V100 costs more than 3x a 6242+2080S combo part
        assert TESLA_V100.price_usd > 3 * (RTX_2080S.price_usd + XEON_6242.price_usd) / 2
        assert RTX_2080.price_usd == RTX_2080S.price_usd

    def test_catalog_complete(self):
        assert set(PROCESSOR_CATALOG) == {"6242", "6242L", "2080", "2080S", "V100"}
        assert set(BUS_CATALOG) == {"PCI-E 3.0 x16", "QPI", "UPI", "shared-memory"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorSpec(
                name="x", kind=ProcessorKind.CPU, ref_threads=4, max_threads=2,
                base_rate_k128=1.0, bandwidth_anchors=((4, 10.0),),
                partition_boost=0.0, price_usd=1.0,
            )
        with pytest.raises(ValueError):
            ProcessorSpec(
                name="x", kind=ProcessorKind.CPU, ref_threads=4, max_threads=8,
                base_rate_k128=0.0, bandwidth_anchors=((4, 10.0),),
                partition_boost=0.0, price_usd=1.0,
            )

    def test_6242l_is_slower_sibling(self):
        assert XEON_6242L_10T.base_rate_k128 < XEON_6242.base_rate_k128
        assert XEON_6242L_10T.ref_threads == 10
