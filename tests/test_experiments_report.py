"""Tests for the markdown report builder."""

import pytest

from repro.experiments.report import SECTIONS, build_markdown_report


@pytest.fixture(scope="module")
def report_text():
    # fast numeric settings; ablations skipped to keep the module quick
    return build_markdown_report(
        include_ablations=False,
        fig7_kwargs={"max_nnz": 8_000, "epochs": 8, "k": 8},
    )


class TestReport:
    def test_every_section_present(self, report_text):
        for heading in (
            "Figure 3(a)", "Figure 3(b)", "Table 2", "Figure 5", "Figure 6",
            "Figure 7", "Table 4", "Figure 8", "Table 5", "Figure 9", "Table 6",
        ):
            assert heading in report_text, heading

    def test_paper_anchor_values_present(self, report_text):
        # spot-check that paper-reported numbers appear alongside measured
        assert "2.30x" in report_text or "2.3" in report_text  # fig7 speedup
        assert "86%" in report_text                             # table4 util
        assert "0.559" in report_text                           # table6

    def test_shape_verdicts_rendered(self, report_text):
        assert report_text.count("**Holds") >= 8

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|") and not line.startswith("|--"):
                assert line.rstrip().endswith("|"), line

    def test_ablations_toggle(self, report_text):
        assert "Ablations and extensions" not in report_text

    def test_section_registry(self):
        assert list(SECTIONS) == [
            "fig3", "table2", "fig5-6", "fig7", "table4",
            "fig8", "table5", "fig9", "table6",
        ]
