"""Tests for the flow-sensitive HCC2xx rules, summaries and baselines."""

import ast
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.flow import (
    module_summaries,
    summarize_function,
)
from repro.analysis.lint import (
    LintIssue,
    Severity,
    all_rules,
    filter_rules,
    flow_rules,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "data" / "flow_corpus"
EXPECT_RE = re.compile(r"#\s*expect:\s*(HCC\d+)")


def flow_issues(source: str, path: str = "corpus.py"):
    return lint_source(textwrap.dedent(source), path, rules=flow_rules())


# ---------------------------------------------------------------------------
# the seeded corpus: every annotated violation flagged, nothing else
# ---------------------------------------------------------------------------
def corpus_files():
    files = sorted(CORPUS.rglob("*.py"))
    assert files, f"flow corpus missing at {CORPUS}"
    return files


@pytest.mark.parametrize(
    "fpath", corpus_files(), ids=lambda p: str(p.relative_to(CORPUS))
)
def test_corpus_findings_match_annotations(fpath):
    source = fpath.read_text(encoding="utf-8")
    expected = {
        (lineno, m.group(1))
        for lineno, line in enumerate(source.splitlines(), start=1)
        for m in [EXPECT_RE.search(line)]
        if m
    }
    issues = lint_source(source, str(fpath), rules=flow_rules())
    actual = {(i.line, i.rule_id) for i in issues}
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"{fpath.name}: expected findings not reported: {missing}"
    assert not unexpected, f"{fpath.name}: unexpected findings: {unexpected}"


def test_corpus_covers_every_flow_rule():
    expected_ids = set()
    for fpath in corpus_files():
        expected_ids |= set(EXPECT_RE.findall(fpath.read_text(encoding="utf-8")))
    assert expected_ids == {r.rule_id for r in flow_rules()}


def test_src_tree_is_clean_under_flow_rules():
    issues = lint_paths([str(REPO_ROOT / "src")], rules=flow_rules())
    rendered = [f"{i.path}:{i.line} {i.rule_id}: {i.message}" for i in issues]
    assert rendered == []


# ---------------------------------------------------------------------------
# registries and filtering
# ---------------------------------------------------------------------------
class TestRegistryAndFiltering:
    def test_flow_registry_ids(self):
        assert [r.rule_id for r in flow_rules()] == [
            "HCC201",
            "HCC202",
            "HCC203",
            "HCC204",
        ]

    def test_flow_rules_not_in_default_registry(self):
        default_ids = {r.rule_id for r in all_rules()}
        assert not any(rule_id.startswith("HCC2") for rule_id in default_ids)

    def test_select_by_prefix(self):
        chosen = filter_rules(all_rules() + flow_rules(), select="HCC2")
        assert [r.rule_id for r in chosen] == ["HCC201", "HCC202", "HCC203", "HCC204"]

    def test_select_by_slug_and_id(self):
        chosen = filter_rules(
            all_rules() + flow_rules(), select="flow-dtype-taint,HCC201"
        )
        assert [r.rule_id for r in chosen] == ["HCC201", "HCC203"]

    def test_ignore_drops_rules(self):
        chosen = filter_rules(flow_rules(), ignore="flow-dtype-taint")
        assert [r.rule_id for r in chosen] == ["HCC201", "HCC202", "HCC204"]

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError, match="matches no known rule"):
            filter_rules(flow_rules(), select="HCC999")


# ---------------------------------------------------------------------------
# targeted behaviours beyond the corpus
# ---------------------------------------------------------------------------
class TestResourceLeakRule:
    def test_suppression_comment_applies(self):
        issues = flow_issues(
            """
            from multiprocessing import shared_memory

            def intentional(nbytes):  # a justified exception
                shm = shared_memory.SharedMemory(create=True, size=nbytes)  # hcclint: disable=flow-resource-leak
                return shm.name
            """
        )
        assert issues == []

    def test_passing_to_unknown_callee_is_lenient(self):
        issues = flow_issues(
            """
            from multiprocessing import shared_memory

            def hands_off(nbytes, registry):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                registry.adopt(shm)
            """
        )
        assert issues == []

    def test_clean_module_helper_keeps_tracking(self):
        issues = flow_issues(
            """
            from multiprocessing import shared_memory

            def _log(shm):
                print(shm.name)

            def still_leaks(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                _log(shm)
            """
        )
        assert [i.rule_id for i in issues] == ["HCC201"]


class TestExceptionSafetyRule:
    def test_out_of_scope_module_is_ignored(self):
        issues = flow_issues(
            """
            def merge_then_validate(self, payloads):
                self.model.Q += payloads[0]
                if not self.ok(payloads):
                    raise ValueError("torn payload")
            """,
            path="src/repro/core/server.py",
        )
        assert issues == []

    def test_resilience_scope_is_checked(self):
        issues = flow_issues(
            """
            def merge_then_validate(self, payloads):
                self.model.Q += payloads[0]
                if not self.ok(payloads):
                    raise ValueError("torn payload")
            """,
            path="src/repro/resilience/recovery.py",
        )
        assert [i.rule_id for i in issues] == ["HCC202"]


class TestStageProtocolRule:
    def test_violation_names_the_transition(self):
        issues = flow_issues(
            """
            def bad(backend, epoch):
                backend.pull(epoch)
                backend.push(epoch)
            """
        )
        assert len(issues) == 1
        assert "push()" in issues[0].message
        assert "pulled" in issues[0].message and "computed" in issues[0].message

    def test_may_states_suppress_false_alarms(self):
        # after the if, the backend may be pulled OR computed; compute is
        # legal from pulled, so no *definite* violation exists
        issues = flow_issues(
            """
            def ambiguous(backend, epoch, flag):
                backend.pull(epoch)
                if flag:
                    backend.compute(epoch)
                backend.compute(epoch)
            """
        )
        assert issues == []


# ---------------------------------------------------------------------------
# function summaries
# ---------------------------------------------------------------------------
class TestSummaries:
    def summarize(self, src):
        tree = ast.parse(textwrap.dedent(src))
        fn = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
        return summarize_function(fn)

    def test_closes_param(self):
        summary = self.summarize(
            """
            def _teardown(shm):
                shm.close()
                shm.unlink()
            """
        )
        assert summary.effects["shm"].closes

    def test_stores_param(self):
        summary = self.summarize(
            """
            def _adopt(self, shm):
                self._segments.append(shm)
            """
        )
        assert summary.effects["shm"].stores
        assert not summary.effects["shm"].closes

    def test_returns_param(self):
        summary = self.summarize(
            """
            def _wrap(shm, spec):
                return (shm, spec)
            """
        )
        assert summary.effects["shm"].returns

    def test_returns_float64(self):
        summary = self.summarize(
            """
            def _rates(n):
                import numpy as np
                return np.zeros(n, dtype=np.float64)
            """
        )
        assert summary.returns_float64

    def test_module_summaries_cover_toplevel_functions(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def a(x):
                    return x

                def b(y):
                    y.close()
                """
            )
        )
        summaries = module_summaries(tree)
        assert set(summaries) == {"a", "b"}
        assert summaries["b"].effects["y"].closes


# ---------------------------------------------------------------------------
# baseline files
# ---------------------------------------------------------------------------
def make_issue(path="src/x.py", rule_id="HCC201", message="leak", line=3):
    return LintIssue(
        rule="flow-resource-leak",
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=0,
        message=message,
    )


class TestBaseline:
    def test_apply_splits_new_from_baselined(self):
        recorded = make_issue(line=3)
        baseline = Baseline.from_issues([recorded])
        # same shape on a different line still matches (line-agnostic)...
        new, baselined = baseline.apply([make_issue(line=99)])
        assert new == [] and len(baselined) == 1
        # ...but a different message is a new finding
        new, baselined = baseline.apply([make_issue(message="other leak")])
        assert len(new) == 1 and baselined == []

    def test_counts_bound_repeats(self):
        baseline = Baseline.from_issues([make_issue(), make_issue()])
        found = [make_issue(), make_issue(), make_issue()]
        new, baselined = baseline.apply(found)
        assert len(baselined) == 2 and len(new) == 1

    def test_roundtrip(self):
        baseline = Baseline.from_issues([make_issue()])
        again = Baseline.from_json(baseline.to_json())
        assert again.entries == baseline.entries

    def test_rejects_garbage(self):
        with pytest.raises(BaselineError):
            Baseline.from_json("not json")
        with pytest.raises(BaselineError):
            Baseline.from_json('{"version": 99}')

    def test_repo_baseline_is_valid_and_empty(self):
        baseline = Baseline.load(str(REPO_ROOT / ".hcclint-baseline.json"))
        assert baseline.entries == {}
