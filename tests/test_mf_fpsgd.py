"""Unit tests for the FPSGD baseline: block grid + free-block scheduler."""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.mf.fpsgd import FPSGD, BlockGrid, BlockScheduler


class TestBlockGrid:
    def test_blocks_cover_everything(self, small_ratings):
        grid = BlockGrid(small_ratings, nb=4)
        assert grid.total_nnz() == small_ratings.nnz
        assert len(grid.blocks) == 16

    def test_block_entries_in_band(self, small_ratings):
        nb = 3
        grid = BlockGrid(small_ratings, nb=nb)
        row_edges = np.linspace(0, small_ratings.m, nb + 1).astype(int)
        col_edges = np.linspace(0, small_ratings.n, nb + 1).astype(int)
        for b in grid.blocks:
            if b.nnz == 0:
                continue
            sub = small_ratings.take(b.entries)
            assert sub.rows.min() >= row_edges[b.row_band]
            assert sub.rows.max() < row_edges[b.row_band + 1]
            assert sub.cols.min() >= col_edges[b.col_band]
            assert sub.cols.max() < col_edges[b.col_band + 1]

    def test_block_lookup(self, small_ratings):
        grid = BlockGrid(small_ratings, nb=2)
        b = grid.block(1, 0)
        assert (b.row_band, b.col_band) == (1, 0)

    def test_entries_disjoint(self, small_ratings):
        grid = BlockGrid(small_ratings, nb=4)
        all_entries = np.concatenate([b.entries for b in grid.blocks])
        assert len(np.unique(all_entries)) == small_ratings.nnz

    def test_invalid_nb(self, small_ratings):
        with pytest.raises(ValueError):
            BlockGrid(small_ratings, nb=0)


class TestBlockScheduler:
    def test_epoch_processes_each_block_once(self, small_ratings, rng):
        grid = BlockGrid(small_ratings, nb=4)
        sched = BlockScheduler(grid, rng)
        rounds = sched.epoch_rounds(threads=3)
        processed = [b for rnd in rounds for b in rnd]
        assert len(processed) == 16
        keys = {(b.row_band, b.col_band) for b in processed}
        assert len(keys) == 16

    def test_rounds_are_conflict_free(self, small_ratings, rng):
        """FPSGD's core invariant: blocks scheduled concurrently never
        share a row band or a column band."""
        grid = BlockGrid(small_ratings, nb=5)
        sched = BlockScheduler(grid, rng)
        for rnd in sched.epoch_rounds(threads=4):
            rows = [b.row_band for b in rnd]
            cols = [b.col_band for b in rnd]
            assert len(set(rows)) == len(rows)
            assert len(set(cols)) == len(cols)

    def test_round_width_bounded_by_threads(self, small_ratings, rng):
        grid = BlockGrid(small_ratings, nb=6)
        sched = BlockScheduler(grid, rng)
        for rnd in sched.epoch_rounds(threads=2):
            assert len(rnd) <= 2

    def test_fairness_across_epochs(self, small_ratings, rng):
        grid = BlockGrid(small_ratings, nb=3)
        sched = BlockScheduler(grid, rng)
        for _ in range(4):
            sched.epoch_rounds(threads=2)
        assert np.all(sched.processed == 4)


class TestFPSGDTraining:
    def test_converges(self, small_ratings):
        f = FPSGD(k=8, threads=3, lr=0.01, reg=0.01, seed=0)
        f.fit(small_ratings, epochs=6)
        assert f.history.rmse[-1] < f.history.rmse[0]

    def test_grid_size_follows_threads(self, small_ratings):
        f = FPSGD(k=4, threads=5, seed=0)
        f.fit(small_ratings, epochs=1)
        # (threads + 1)^2 blocks per the FPSGD design
        assert f.history.epochs == 1

    def test_thread_count_changes_schedule_not_quality(self, small_ratings):
        # more threads -> a finer block grid -> smaller effective batches;
        # convergence must survive either way and stay in the same regime
        a = FPSGD(k=8, threads=2, lr=0.01, seed=0)
        b = FPSGD(k=8, threads=6, lr=0.01, seed=0)
        a.fit(small_ratings, epochs=5)
        b.fit(small_ratings, epochs=5)
        assert a.history.rmse[-1] < a.history.rmse[0]
        assert b.history.rmse[-1] < b.history.rmse[0]
        assert abs(a.history.rmse[-1] - b.history.rmse[-1]) < 0.15

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            FPSGD(k=4, threads=0)

    def test_history_lengths(self, small_ratings):
        f = FPSGD(k=4, threads=2, seed=0)
        f.fit(small_ratings, epochs=3)
        assert len(f.history.rmse) == 3
        assert len(f.history.train_mse) == 3
