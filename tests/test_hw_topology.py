"""Unit tests for platform topology."""

import pytest

from repro.hardware.processor import Processor
from repro.hardware.specs import (
    PCIE3_X16,
    RTX_2080,
    RTX_2080S,
    UPI,
    XEON_6242,
)
from repro.hardware.topology import (
    Platform,
    custom_platform,
    paper_workstation,
    single_processor,
)


class TestPlatform:
    def test_add_worker_and_bus(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        w = plat.add_worker(Processor(RTX_2080, instance="g"), PCIE3_X16)
        assert plat.bus(w) is PCIE3_X16
        assert plat.bus(w.name) is PCIE3_X16
        assert plat.n_workers == 1

    def test_duplicate_name_rejected(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        plat.add_worker(Processor(RTX_2080, instance="g"), PCIE3_X16)
        with pytest.raises(ValueError, match="duplicate"):
            plat.add_worker(Processor(RTX_2080, instance="g"), PCIE3_X16)

    def test_unknown_bus_lookup(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        with pytest.raises(KeyError):
            plat.bus("ghost")

    def test_worker_lookup(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        w = plat.add_worker(Processor(RTX_2080, instance="g"), PCIE3_X16)
        assert plat.worker(w.name) is w
        with pytest.raises(KeyError):
            plat.worker("nope")

    def test_counts(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        plat.add_worker(Processor(XEON_6242, threads=24, instance="c"), UPI)
        plat.add_worker(Processor(RTX_2080, instance="g"), PCIE3_X16)
        plat.add_worker(Processor(RTX_2080S, instance="g2"), PCIE3_X16)
        assert plat.counts() == (1, 2)


class TestPaperWorkstation:
    def test_default_composition(self):
        plat = paper_workstation()
        assert plat.n_workers == 4
        kinds = [w.kind.value for w in plat.workers]
        assert kinds.count("cpu") == 2
        assert kinds.count("gpu") == 2

    def test_special_worker_time_shared(self):
        plat = paper_workstation()
        special = [w for w in plat.workers if w.time_share < 1.0]
        assert len(special) == 1
        assert special[0].is_cpu

    def test_without_special_worker(self):
        plat = paper_workstation(include_special_worker=False)
        assert plat.n_workers == 3
        assert all(w.time_share == 1.0 for w in plat.workers)

    def test_cpu0_threads_configurable(self):
        plat = paper_workstation(cpu0_threads=10)
        assert plat.server.threads == 10

    def test_buses(self):
        plat = paper_workstation()
        gpu_buses = [plat.bus(w).name for w in plat.workers if w.is_gpu]
        assert gpu_buses == ["PCI-E 3.0 x16", "PCI-E 3.0 x16"]
        cpu1 = [w for w in plat.workers if w.is_cpu and w.time_share == 1.0][0]
        assert plat.bus(cpu1).name == "UPI"

    def test_price_counts_physical_chips_once(self):
        plat = paper_workstation()
        # 2x 6242 + 2080 + 2080S; the time-shared worker is not a new chip
        assert plat.total_price() == pytest.approx(2 * 2529.0 + 2 * 699.0)

    def test_describe_mentions_every_worker(self):
        plat = paper_workstation()
        text = plat.describe()
        for w in plat.workers:
            assert w.name in text


class TestBuilders:
    def test_single_processor(self):
        plat = single_processor(RTX_2080S)
        assert plat.n_workers == 1
        assert plat.workers[0].spec is RTX_2080S

    def test_single_cpu_uses_shared_memory(self):
        plat = single_processor(XEON_6242)
        assert plat.bus(plat.workers[0]).name == "shared-memory"

    def test_custom_platform(self):
        plat = custom_platform(
            [(RTX_2080, None, PCIE3_X16), (XEON_6242, 24, UPI)]
        )
        assert plat.n_workers == 2
        assert plat.workers[1].threads == 24
