"""Unit tests for the wall-clock profiling probes."""

import pytest

from repro.hardware.profiler import measure_copy_bandwidth_gbs, measure_update_rate
from repro.mf.kernels import ConflictPolicy


class TestCopyBandwidth:
    def test_positive_and_plausible(self):
        bw = measure_copy_bandwidth_gbs(nbytes=8 * 1024 * 1024, repeats=2)
        # any machine this runs on copies between 0.1 and 1000 GB/s
        assert 0.1 < bw < 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_copy_bandwidth_gbs(nbytes=0)
        with pytest.raises(ValueError):
            measure_copy_bandwidth_gbs(repeats=0)


class TestUpdateRate:
    def test_counts_every_update(self, small_ratings):
        rate = measure_update_rate(small_ratings, k=8, seed=0)
        assert rate > 1e3  # any host manages >1k updates/s

    def test_policy_accepted(self, small_ratings):
        rate = measure_update_rate(
            small_ratings, k=8, policy=ConflictPolicy.LAST_WRITE, seed=0
        )
        assert rate > 0

    def test_smaller_k_faster(self, medium_ratings):
        slow = measure_update_rate(medium_ratings, k=64, seed=0)
        fast = measure_update_rate(medium_ratings, k=8, seed=0)
        assert fast > slow  # Eq. 2: work ~ (16k+4)
