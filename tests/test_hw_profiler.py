"""Unit tests for the wall-clock profiling probes."""

import pytest

from repro.hardware.profiler import (
    ProbeResult,
    measure_copy_bandwidth_gbs,
    measure_update_rate,
    probe_copy_bandwidth,
    probe_update_rate,
)
from repro.mf.kernels import ConflictPolicy


class TestCopyBandwidth:
    def test_positive_and_plausible(self):
        bw = measure_copy_bandwidth_gbs(nbytes=8 * 1024 * 1024, repeats=2)
        # any machine this runs on copies between 0.1 and 1000 GB/s
        assert 0.1 < bw < 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_copy_bandwidth_gbs(nbytes=0)
        with pytest.raises(ValueError):
            measure_copy_bandwidth_gbs(repeats=0)


class TestUpdateRate:
    def test_counts_every_update(self, small_ratings):
        rate = measure_update_rate(small_ratings, k=8, seed=0)
        assert rate > 1e3  # any host manages >1k updates/s

    def test_policy_accepted(self, small_ratings):
        rate = measure_update_rate(
            small_ratings, k=8, policy=ConflictPolicy.LAST_WRITE, seed=0
        )
        assert rate > 0

    def test_smaller_k_faster(self, medium_ratings):
        slow = measure_update_rate(medium_ratings, k=64, seed=0)
        fast = measure_update_rate(medium_ratings, k=8, seed=0)
        assert fast > slow  # Eq. 2: work ~ (16k+4)


class TestProbeResults:
    def test_bandwidth_probe_carries_provenance(self):
        res = probe_copy_bandwidth(nbytes=8 * 1024 * 1024, repeats=2)
        assert isinstance(res, ProbeResult)
        assert res.unit == "GB/s"
        assert res.repeats == 2
        assert res.elapsed_seconds > 0
        assert 0.1 < res.value < 1000.0

    def test_update_rate_probe_carries_provenance(self, small_ratings):
        res = probe_update_rate(small_ratings, k=8, seed=0)
        assert res.unit == "updates/s"
        assert res.repeats == 1
        assert res.value > 1e3
        assert res.elapsed_seconds > 0

    def test_float_wrappers_return_probe_value(self, small_ratings):
        assert isinstance(measure_copy_bandwidth_gbs(nbytes=1024, repeats=1), float)
        assert isinstance(measure_update_rate(small_ratings, k=8), float)

    def test_record_to_registry(self, small_ratings):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        res = probe_update_rate(small_ratings, k=8, seed=0)
        res.record_to(registry, "update_rate")
        assert registry.gauge("update_rate").value(unit="updates/s") == pytest.approx(
            res.value
        )
        probe_events = [e for e in registry.events if e["event"] == "probe"]
        assert probe_events[0]["name"] == "update_rate"
        assert probe_events[0]["repeats"] == 1

    def test_probe_validation(self):
        with pytest.raises(ValueError):
            probe_copy_bandwidth(nbytes=0)
        with pytest.raises(ValueError):
            probe_copy_bandwidth(repeats=0)
