"""Unit tests for rating-matrix file IO."""

import numpy as np
import pytest

from repro.data.io import (
    load_movielens_csv,
    load_npz,
    load_text,
    save_npz,
    save_text,
)


class TestTextFormat:
    def test_roundtrip(self, tiny_ratings, tmp_path):
        path = tmp_path / "ratings.txt"
        save_text(tiny_ratings, path)
        back = load_text(path)
        assert back.shape == tiny_ratings.shape
        np.testing.assert_array_equal(back.to_dense(), tiny_ratings.to_dense())

    def test_shape_header_respected(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("# 10 20\n0 0 3.5\n")
        r = load_text(path)
        assert r.shape == (10, 20)

    def test_shape_inferred_without_header(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("2 5 1.0\n7 3 2.0\n")
        r = load_text(path)
        assert r.shape == (8, 6)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("\n0 0 1.0\n\n1 1 2.0\n")
        assert load_text(path).nnz == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 0\n")
        with pytest.raises(ValueError, match="expected"):
            load_text(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("# 3 3\n")
        with pytest.raises(ValueError, match="no rating"):
            load_text(path)


class TestMovieLensCSV:
    def test_densifies_sparse_ids(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text(
            "userId,movieId,rating,timestamp\n"
            "100,900,4.0,111\n"
            "100,905,3.5,112\n"
            "205,900,5.0,113\n"
        )
        r, user_map, item_map = load_movielens_csv(path)
        assert r.shape == (2, 2)
        assert r.nnz == 3
        assert user_map == {100: 0, 205: 1}
        assert item_map == {900: 0, 905: 1}
        assert r.to_dense()[user_map[205], item_map[900]] == 5.0

    def test_headerless(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text("1,2,3.0\n2,2,4.0\n")
        r, _, _ = load_movielens_csv(path)
        assert r.nnz == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "ml.dat"
        path.write_text("1::2::3.0".replace("::", "\t") + "\n")
        r, _, _ = load_movielens_csv(path, delimiter="\t")
        assert r.nnz == 1

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text("1,2\n")
        with pytest.raises(ValueError, match=">= 3 fields"):
            load_movielens_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text("userId,movieId,rating\n")
        with pytest.raises(ValueError, match="no ratings"):
            load_movielens_csv(path)


class TestNpz:
    def test_exact_roundtrip(self, small_ratings, tmp_path):
        path = tmp_path / "ratings.npz"
        save_npz(small_ratings, path)
        back = load_npz(path)
        assert back.shape == small_ratings.shape
        np.testing.assert_array_equal(back.rows, small_ratings.rows)
        np.testing.assert_array_equal(back.cols, small_ratings.cols)
        np.testing.assert_array_equal(back.vals, small_ratings.vals)

    def test_suffix_added(self, tiny_ratings, tmp_path):
        path = tmp_path / "r"
        save_npz(tiny_ratings, path)  # numpy appends .npz
        back = load_npz(tmp_path / "r")
        assert back.nnz == tiny_ratings.nnz
