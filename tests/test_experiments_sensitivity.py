"""Unit tests for the calibration-sensitivity study."""

import pytest

from repro.experiments.sensitivity import (
    KNOBS,
    METRICS,
    perturbed,
    sensitivity_study,
)


class TestPerturbed:
    def test_scales_and_restores(self):
        import repro.hardware.processor as proc

        original = proc.CPU_CORUN_FACTOR
        with perturbed("cpu-corun-factor", 1.1) as value:
            assert proc.CPU_CORUN_FACTOR == pytest.approx(original * 1.1)
            assert value == pytest.approx(original * 1.1)
        assert proc.CPU_CORUN_FACTOR == original

    def test_restores_on_exception(self):
        import repro.core.comm as comm

        original = comm.COMM_P_BANDWIDTH_FACTOR
        with pytest.raises(RuntimeError):
            with perturbed("comm-p-slowdown", 0.5):
                raise RuntimeError("boom")
        assert comm.COMM_P_BANDWIDTH_FACTOR == original

    def test_unknown_knob(self):
        with pytest.raises(KeyError):
            with perturbed("warp-core", 1.1):
                pass

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            with perturbed("cpu-corun-factor", 0.0):
                pass


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return sensitivity_study(multipliers=(0.8, 1.0, 1.2))

    def test_full_grid(self, study):
        assert len(study.rows) == len(KNOBS) * 3

    def test_baseline_rows_consistent(self, study):
        """Every knob's multiplier=1.0 row must report identical metrics
        (the perturbation context truly restores state)."""
        baselines = [row[2:] for row in study.rows if row[1] == 1.0]
        for other in baselines[1:]:
            for a, b in zip(baselines[0], other):
                assert a == pytest.approx(b, rel=1e-9)

    def test_shapes_survive_perturbation(self, study):
        """The headline shapes hold across the whole +-20% grid."""
        headers = study.headers
        util_i = headers.index("netflix-utilization")
        red_i = headers.index("dp1-reduction")
        q_i = headers.index("q-only-speedup")
        cp_i = headers.index("comm-p-ratio")
        for row in study.rows:
            assert row[util_i] > 0.8          # utilization stays high
            assert row[red_i] >= 0.0          # DP1 never loses to DP0
            assert row[q_i] > 15              # Q-only stays a huge win
            assert row[cp_i] > 4              # COMM-P stays much slower

    def test_corun_knob_drives_dp1_gap(self, study):
        """By construction, the co-run factor *is* the DP0/DP1 gap: a
        weaker interference (multiplier > 1) shrinks the reduction."""
        rows = {
            (r[0], r[1]): r for r in study.rows if r[0] == "cpu-corun-factor"
        }
        red_i = study.headers.index("dp1-reduction")
        assert rows[("cpu-corun-factor", 0.8)][red_i] > rows[("cpu-corun-factor", 1.2)][red_i]

    def test_comm_p_knob_drives_ratio_only(self, study):
        cp_i = study.headers.index("comm-p-ratio")
        util_i = study.headers.index("netflix-utilization")
        rows = {r[1]: r for r in study.rows if r[0] == "comm-p-slowdown"}
        assert rows[0.8][cp_i] > rows[1.2][cp_i]
        assert rows[0.8][util_i] == pytest.approx(rows[1.2][util_i], rel=1e-9)

    def test_requires_baseline(self):
        with pytest.raises(ValueError, match="1.0"):
            sensitivity_study(multipliers=(0.9, 1.1))

    def test_metric_registry(self):
        assert set(METRICS) == {
            "netflix-utilization", "dp1-reduction",
            "q-only-speedup", "comm-p-ratio",
        }
