"""Tests for the dynamic race/ownership detector.

Acceptance criteria from the issue: a deliberately overlapping
partition is reported as a P-row collision, and the real DP0/DP1/DP2
plans come out clean (paper 3.4, Strategy 1: "transmit Q only" is
correct only when P ownership is disjoint).
"""

import numpy as np
import pytest

from repro.analysis.race import (
    READ,
    WRITE,
    Access,
    RaceLog,
    check_row_ownership,
    inject_overlap,
    race_check,
    tracked_train,
)
from repro.core.partition import PartitionPlan, dp0, dp1, dp2
from repro.data.grid import GridKind, partition_rows
from repro.data.synthetic import SyntheticConfig, generate_low_rank

OWNERSHIP_KINDS = {"range-overlap", "duplicate-entries", "row-overlap"}


def make_ratings(m=120, n=60, nnz=1500, seed=0):
    cfg = SyntheticConfig(m=m, n=n, nnz=nnz, rating_step=0.5)
    return generate_low_rank(cfg, seed=seed).shuffle(seed)


def make_assignments(ratings, fractions=(0.5, 0.3, 0.2)):
    return partition_rows(ratings, list(fractions), kind=GridKind.ROW)


class TestVectorClocks:
    def test_same_epoch_cross_worker_is_concurrent(self):
        log = RaceLog(n_workers=2)
        a = log.record(actor=0, op=WRITE, target="P", lo=0, hi=10)
        b = log.record(actor=1, op=WRITE, target="P", lo=20, hi=30)
        assert a.concurrent_with(b)
        assert not a.happens_before(b)

    def test_epoch_barrier_orders_accesses(self):
        log = RaceLog(n_workers=2)
        a = log.record(actor=0, op=WRITE, target="P", lo=0, hi=10)
        log.advance_epoch()
        b = log.record(actor=1, op=WRITE, target="P", lo=0, hi=10)
        assert a.happens_before(b)
        assert not a.concurrent_with(b)

    def test_same_actor_is_ordered(self):
        log = RaceLog(n_workers=2)
        a = log.record(actor=0, op=WRITE, target="P", lo=0, hi=10)
        b = log.record(actor=0, op=WRITE, target="P", lo=0, hi=10)
        assert a.happens_before(b)

    def test_overlap_semantics(self):
        acc = Access(actor=0, epoch=0, op=WRITE, target="P",
                     lo=0, hi=10, clock=(1, 0))
        disjoint = Access(actor=1, epoch=0, op=WRITE, target="P",
                          lo=10, hi=20, clock=(0, 1))
        assert not acc.overlaps(disjoint)  # half-open: [0,10) vs [10,20)
        touching = Access(actor=1, epoch=0, op=WRITE, target="P",
                          lo=9, hi=20, clock=(0, 1))
        assert acc.overlaps(touching)

    def test_unknown_actor_rejected(self):
        log = RaceLog(n_workers=2)
        with pytest.raises(ValueError):
            log.record(actor=5, op=WRITE, target="P")


class TestRaceLog:
    def test_concurrent_overlapping_writes_flagged(self):
        log = RaceLog(n_workers=2)
        log.record(actor=0, op=WRITE, target="P", lo=0, hi=50)
        log.record(actor=1, op=WRITE, target="P", lo=40, hi=90)
        violations = log.p_row_conflicts()
        assert len(violations) == 1
        assert violations[0].kind == "p-row-overlap"
        assert "overlapping P rows" in violations[0].message

    def test_read_read_overlap_is_fine(self):
        log = RaceLog(n_workers=2)
        log.record(actor=0, op=READ, target="P", lo=0, hi=50)
        log.record(actor=1, op=READ, target="P", lo=0, hi=50)
        assert log.p_row_conflicts() == []

    def test_write_read_overlap_flagged(self):
        log = RaceLog(n_workers=2)
        log.record(actor=0, op=WRITE, target="P", lo=0, hi=50)
        log.record(actor=1, op=READ, target="P", lo=10, hi=20)
        assert len(log.p_row_conflicts()) == 1

    def test_cross_epoch_overlap_is_legal(self):
        """Repartitioning between epochs must not be flagged."""
        log = RaceLog(n_workers=2)
        log.record(actor=0, op=WRITE, target="P", lo=0, hi=50)
        log.advance_epoch()
        log.record(actor=1, op=WRITE, target="P", lo=0, hi=50)
        assert log.p_row_conflicts() == []

    def test_double_copy_flagged(self):
        """Paper 3.5: one pull deposit per epoch."""
        log = RaceLog(n_workers=2)
        server = log.server_actor
        log.record(actor=server, op=WRITE, target="pull")
        log.record(actor=server, op=WRITE, target="pull")
        kinds = [v.kind for v in log.copy_discipline_violations()]
        assert kinds == ["double-copy"]

    def test_one_copy_per_epoch_is_clean(self):
        log = RaceLog(n_workers=2)
        server = log.server_actor
        log.record(actor=server, op=WRITE, target="pull")
        log.advance_epoch()
        log.record(actor=server, op=WRITE, target="pull")
        assert log.copy_discipline_violations() == []

    def test_foreign_write_flagged(self):
        log = RaceLog(n_workers=2)
        log.record(actor=1, op=WRITE, target="push:0")
        kinds = [v.kind for v in log.copy_discipline_violations()]
        assert "foreign-write" in kinds

    def test_own_push_is_clean(self):
        log = RaceLog(n_workers=2)
        log.record(actor=0, op=WRITE, target="push:0")
        log.record(actor=1, op=WRITE, target="push:1")
        assert log.violations() == []


class TestRowOwnership:
    def test_clean_partition_passes(self):
        ratings = make_ratings()
        assignments = make_assignments(ratings)
        assert check_row_ownership(assignments, ratings) == []

    def test_injected_overlap_detected(self):
        ratings = make_ratings()
        assignments = inject_overlap(make_assignments(ratings))
        violations = check_row_ownership(assignments, ratings)
        assert violations, "overlapping shards must be reported"
        kinds = {v.kind for v in violations}
        assert kinds <= OWNERSHIP_KINDS
        assert "row-overlap" in kinds  # the P-row collision itself
        msg = " ".join(v.message for v in violations)
        assert "0" in msg and "1" in msg  # names the colliding workers

    def test_span_overlap_without_ratings(self):
        ratings = make_ratings()
        assignments = inject_overlap(make_assignments(ratings))
        kinds = {v.kind for v in check_row_ownership(assignments)}
        assert "range-overlap" in kinds or "duplicate-entries" in kinds


class TestTrackedTrain:
    def test_clean_run_has_no_violations(self):
        ratings = make_ratings()
        assignments = make_assignments(ratings)
        report = tracked_train(ratings, assignments, epochs=2, label="clean")
        assert report.ok, report.render()
        assert len(report.rmse_history) == 2
        assert np.isfinite(report.rmse_history).all()
        assert report.n_events > 0
        assert "OK" in report.render()

    def test_overlapping_plan_reports_p_row_collision(self):
        """The issue's core acceptance test: a deliberately overlapping
        partition is caught by the dynamic detector."""
        ratings = make_ratings()
        assignments = inject_overlap(make_assignments(ratings))
        report = tracked_train(ratings, assignments, epochs=1, label="corrupt")
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert "p-row-overlap" in kinds
        assert "p-row-overlap" in report.render()

    def test_rmse_decreases(self):
        ratings = make_ratings(nnz=2500)
        assignments = make_assignments(ratings)
        report = tracked_train(ratings, assignments, epochs=3,
                               label="converge", seed=1)
        assert report.rmse_history[-1] < report.rmse_history[0]


class TestPartitionPlans:
    """DP0/DP1/DP2 plans all yield disjoint P ownership (paper Eq. 6/Alg. 1/Eq. 7)."""

    rates = [2.5, 1.5, 1.0]
    is_gpu = [True, False, False]

    @pytest.fixture()
    def ratings(self):
        return make_ratings(m=160, n=80, nnz=2000)

    def _measure(self, x):
        # modeled co-run interference: CPU workers run 25% slow
        return [
            r * xi * (1.0 if gpu else 1.25)
            for r, xi, gpu in zip(self.rates, x, self.is_gpu)
        ]

    def _check(self, plan, ratings):
        assert isinstance(plan, PartitionPlan)
        assignments = plan.materialize(ratings)
        assert check_row_ownership(assignments, ratings) == []
        report = tracked_train(ratings, assignments, epochs=1, label="plan")
        assert report.ok, report.render()

    def test_dp0_clean(self, ratings):
        self._check(dp0(self.rates), ratings)

    def test_dp1_clean(self, ratings):
        plan = dp1(dp0(self.rates), self._measure, self.is_gpu)
        self._check(plan, ratings)

    def test_dp2_clean(self, ratings):
        plan = dp2(dp1(dp0(self.rates), self._measure, self.is_gpu),
                   sync_time=0.05)
        self._check(plan, ratings)


class TestRaceCheckEntryPoint:
    def test_full_check_passes_and_catches_injection(self):
        result = race_check(n_workers=3, nnz=1200, epochs=1,
                            with_injected_overlap=True)
        assert result.ok, result.render()
        assert result.injected_detected
        assert not any(result.static_violations.values())
        assert {"dp0", "dp1", "dp2"} <= set(result.static_violations)
        for report in result.reports:
            assert report.ok, report.render()
        text = result.render()
        assert "PASS" in text
        assert "injected overlap detected: yes" in text

    def test_without_injection(self):
        result = race_check(n_workers=2, nnz=800, epochs=1)
        assert result.ok
        assert result.injected_report is None
