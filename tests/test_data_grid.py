"""Unit tests for row/column grid partitioning."""

import numpy as np
import pytest

from repro.data.grid import (
    GridKind,
    block_sort,
    choose_grid,
    coverage_check,
    partition_entries,
    partition_rows,
)


class TestChooseGrid:
    def test_row_when_tall(self):
        assert choose_grid(100, 10) is GridKind.ROW

    def test_column_when_wide(self):
        assert choose_grid(10, 100) is GridKind.COLUMN

    def test_row_on_square(self):
        assert choose_grid(10, 10) is GridKind.ROW


class TestPartitionRows:
    def test_covers_all_entries_once(self, small_ratings):
        parts = partition_rows(small_ratings, [0.25, 0.25, 0.5])
        assert coverage_check(small_ratings, parts)

    def test_fraction_targets_respected(self, medium_ratings):
        fr = [0.1, 0.2, 0.3, 0.4]
        parts = partition_rows(medium_ratings, fr)
        for f, p in zip(fr, parts):
            assert p.nnz == pytest.approx(f * medium_ratings.nnz, rel=0.1)

    def test_contiguous_disjoint_ranges(self, small_ratings):
        parts = partition_rows(small_ratings, [0.5, 0.5])
        assert parts[0].lo == 0
        assert parts[0].hi == parts[1].lo
        assert parts[1].hi == small_ratings.m

    def test_rows_stay_in_range(self, small_ratings):
        for p in partition_rows(small_ratings, [0.3, 0.7]):
            sub = p.extract(small_ratings)
            if sub.nnz:
                assert sub.rows.min() >= p.lo
                assert sub.rows.max() < p.hi

    def test_column_grid(self, small_ratings):
        parts = partition_rows(small_ratings, [0.5, 0.5], GridKind.COLUMN)
        assert coverage_check(small_ratings, parts)
        for p in parts:
            sub = p.extract(small_ratings)
            if sub.nnz:
                assert sub.cols.min() >= p.lo
                assert sub.cols.max() < p.hi

    def test_single_worker_gets_all(self, small_ratings):
        parts = partition_rows(small_ratings, [1.0])
        assert parts[0].nnz == small_ratings.nnz

    def test_unnormalized_fractions_ok(self, small_ratings):
        a = partition_rows(small_ratings, [1, 1])
        b = partition_rows(small_ratings, [0.5, 0.5])
        assert a[0].nnz == b[0].nnz

    def test_zero_fraction_worker(self, small_ratings):
        parts = partition_rows(small_ratings, [0.0, 1.0])
        assert parts[0].nnz == 0
        assert parts[1].nnz == small_ratings.nnz
        assert coverage_check(small_ratings, parts)

    def test_negative_fraction_rejected(self, small_ratings):
        with pytest.raises(ValueError, match="non-negative"):
            partition_rows(small_ratings, [-0.1, 1.1])

    def test_empty_fractions_rejected(self, small_ratings):
        with pytest.raises(ValueError, match="at least one"):
            partition_rows(small_ratings, [])

    def test_more_workers_than_rows(self, tiny_ratings):
        parts = partition_rows(tiny_ratings, [1 / 8] * 8)
        assert coverage_check(tiny_ratings, parts)

    def test_exclusive_rows_across_workers(self, medium_ratings):
        """Row-grid exclusivity: no user row is shared between workers —
        the property "transmit Q only" relies on."""
        parts = partition_rows(medium_ratings, [0.3, 0.3, 0.4])
        row_sets = []
        for p in parts:
            sub = p.extract(medium_ratings)
            row_sets.append(set(np.unique(sub.rows).tolist()))
        assert not (row_sets[0] & row_sets[1])
        assert not (row_sets[0] & row_sets[2])
        assert not (row_sets[1] & row_sets[2])


class TestPartitionEntries:
    def test_covers_all(self, small_ratings):
        parts = partition_entries(small_ratings, [0.5, 0.5])
        assert coverage_check(small_ratings, parts)

    def test_exact_fraction_split(self, small_ratings):
        parts = partition_entries(small_ratings, [0.25, 0.75])
        assert parts[0].nnz == pytest.approx(small_ratings.nnz * 0.25, abs=1)

    def test_may_share_rows(self, medium_ratings):
        """The crude split shares rows across workers (why the server
        must synchronize against WAW races)."""
        data = medium_ratings.shuffle(0)
        parts = partition_entries(data, [0.5, 0.5])
        rows0 = set(np.unique(data.rows[parts[0].entries]).tolist())
        rows1 = set(np.unique(data.rows[parts[1].entries]).tolist())
        assert rows0 & rows1

    def test_bad_fractions(self, small_ratings):
        with pytest.raises(ValueError):
            partition_entries(small_ratings, [0.0, 0.0])


class TestBlockSort:
    def test_sorted_by_row(self, small_ratings):
        parts = partition_rows(small_ratings, [0.6, 0.4])
        sub = block_sort(small_ratings, parts[0])
        keys = sub.rows * sub.n + sub.cols
        assert np.all(np.diff(keys) >= 0)

    def test_preserves_content(self, small_ratings):
        parts = partition_rows(small_ratings, [0.6, 0.4])
        sub = block_sort(small_ratings, parts[1])
        raw = parts[1].extract(small_ratings)
        np.testing.assert_array_equal(np.sort(sub.vals), np.sort(raw.vals))

    def test_column_grid_sorts_by_col(self, small_ratings):
        parts = partition_rows(small_ratings, [1.0], GridKind.COLUMN)
        sub = block_sort(small_ratings, parts[0])
        keys = sub.cols * sub.m + sub.rows
        assert np.all(np.diff(keys) >= 0)


class TestCoverageCheck:
    def test_detects_missing(self, small_ratings):
        parts = partition_rows(small_ratings, [0.5, 0.5])
        broken = [parts[0]]
        assert not coverage_check(small_ratings, broken)

    def test_detects_duplicates(self, small_ratings):
        parts = partition_rows(small_ratings, [0.5, 0.5])
        assert not coverage_check(small_ratings, [parts[0], parts[0], parts[1]])
