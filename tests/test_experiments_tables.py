"""Unit tests for experiment result containers and table rendering."""

import pytest

from repro.experiments.tables import ExperimentResult, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_column_alignment(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [[1]])

    def test_headers_required(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_float_formatting(self):
        text = render_table(["v"], [[1_234_567.0], [0.000123], [3.14159]])
        assert "1,234,567" in text
        assert "1.230e-04" in text
        assert "3.142" in text


class TestExperimentResult:
    def _sample(self):
        r = ExperimentResult("figX", "demo", ["name", "value"])
        r.add_row("a", 1.0)
        r.add_row("b", 2.0)
        r.add_note("a note")
        return r

    def test_add_and_column(self):
        r = self._sample()
        assert r.column("value") == [1.0, 2.0]
        assert r.column("name") == ["a", "b"]

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="no column"):
            self._sample().column("ghost")

    def test_row_map(self):
        r = self._sample()
        assert r.row_map()["a"] == ["a", 1.0]
        assert r.row_map("value")[2.0] == ["b", 2.0]

    def test_render_includes_id_and_notes(self):
        text = self._sample().render()
        assert "[figX]" in text
        assert "note: a note" in text

    def test_extra_storage(self):
        r = self._sample()
        r.extra["curve"] = [1, 2, 3]
        assert r.extra["curve"] == [1, 2, 3]
