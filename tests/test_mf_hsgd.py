"""Unit tests for the HSGD single-CPU/GPU hybrid baseline."""

import numpy as np
import pytest

from repro.mf.hsgd import HSGD


class TestHSGD:
    def test_converges(self, small_ratings):
        h = HSGD(k=8, lr=0.01, reg=0.01, seed=0)
        h.fit(small_ratings, epochs=5)
        assert h.history.rmse[-1] < h.history.rmse[0]

    def test_gpu_fraction_bounds(self):
        with pytest.raises(ValueError):
            HSGD(k=4, gpu_fraction=0.0)
        with pytest.raises(ValueError):
            HSGD(k=4, gpu_fraction=1.0)

    def test_split_respected(self, small_ratings):
        """Different gpu_fraction -> different training dynamics but the
        same convergence class."""
        a = HSGD(k=8, gpu_fraction=0.25, lr=0.01, seed=0)
        b = HSGD(k=8, gpu_fraction=0.9, lr=0.01, seed=0)
        a.fit(small_ratings, epochs=5)
        b.fit(small_ratings, epochs=5)
        assert a.history.rmse[-1] < a.history.rmse[0]
        assert b.history.rmse[-1] < b.history.rmse[0]
        assert abs(a.history.rmse[-1] - b.history.rmse[-1]) < 0.2

    def test_deterministic(self, small_ratings):
        a = HSGD(k=4, lr=0.01, seed=7)
        b = HSGD(k=4, lr=0.01, seed=7)
        a.fit(small_ratings, epochs=3)
        b.fit(small_ratings, epochs=3)
        assert a.history.rmse == b.history.rmse

    def test_comparable_to_hcc(self, medium_ratings):
        """HSGD (2 workers, static split) should land in the same
        convergence regime as the other trainers."""
        from repro.mf.sgd import HogwildSGD

        h = HSGD(k=8, lr=0.01, seed=1)
        h.fit(medium_ratings, epochs=6)
        ref = HogwildSGD(k=8, lr=0.01, seed=1)
        ref.fit(medium_ratings, epochs=6)
        assert abs(h.history.rmse[-1] - ref.history.rmse[-1]) < 0.15

    def test_parameters_finite(self, small_ratings):
        h = HSGD(k=8, lr=0.02, seed=0)
        h.fit(small_ratings, epochs=6)
        assert np.all(np.isfinite(h.model.P))
        assert np.all(np.isfinite(h.model.Q))

    def test_validation(self):
        with pytest.raises(ValueError):
            HSGD(k=0)
        with pytest.raises(ValueError):
            HSGD(k=4, cpu_threads=0)
