"""Unit tests for the COMM module: traffic plans, backends, buffers."""

import numpy as np
import pytest

from repro.core.comm import (
    COMM_P_BANDWIDTH_FACTOR,
    CommModel,
    CommPlan,
    PullBuffer,
    PushBuffer,
)
from repro.core.config import CommBackendKind, CommConfig, TransmitMode
from repro.data.datasets import NETFLIX, YAHOO_R1
from repro.hardware.specs import PCIE3_X16


class TestCommPlan:
    def test_pq_mode_bytes(self):
        plan = CommPlan.for_dataset(
            NETFLIX, 128, CommConfig(transmit=TransmitMode.P_AND_Q)
        )
        expected = 4 * 128 * (NETFLIX.m + NETFLIX.n)
        assert plan.epoch_pull == expected
        assert plan.epoch_push == expected
        assert plan.final_push_extra == 0

    def test_q_only_bytes(self):
        plan = CommPlan.for_dataset(
            NETFLIX, 128, CommConfig(transmit=TransmitMode.Q_ONLY)
        )
        assert plan.epoch_pull == 4 * 128 * NETFLIX.n
        assert plan.final_push_extra == 4 * 128 * NETFLIX.m

    def test_fp16_halves(self):
        full = CommPlan.for_dataset(NETFLIX, 128, CommConfig())
        half = CommPlan.for_dataset(NETFLIX, 128, CommConfig(fp16=True))
        assert half.epoch_pull == full.epoch_pull // 2
        assert half.final_push_extra == full.final_push_extra // 2

    def test_q_only_reduction_matches_paper_netflix(self):
        """Strategy 1 cuts Netflix transmission by ~96.4% (m >> n)."""
        pq = CommPlan.for_dataset(NETFLIX, 128, CommConfig(transmit=TransmitMode.P_AND_Q))
        q = CommPlan.for_dataset(NETFLIX, 128, CommConfig(transmit=TransmitMode.Q_ONLY))
        reduction = 1 - q.epoch_pull / pq.epoch_pull
        assert reduction == pytest.approx(NETFLIX.m / (NETFLIX.m + NETFLIX.n), rel=1e-6)
        assert reduction > 0.96

    def test_q_only_lower_bound_half(self):
        """The proportion lower bound is 1/2, reached when m = n."""
        from repro.data.datasets import DatasetSpec

        square = DatasetSpec(name="sq", m=1000, n=1000, nnz=5000)
        pq = CommPlan.for_dataset(square, 16, CommConfig(transmit=TransmitMode.P_AND_Q))
        q = CommPlan.for_dataset(square, 16, CommConfig(transmit=TransmitMode.Q_ONLY))
        assert q.epoch_pull / pq.epoch_pull == pytest.approx(0.5)

    def test_sync_values_follow_mode(self):
        q = CommPlan.for_dataset(NETFLIX, 128, CommConfig())
        pq = CommPlan.for_dataset(NETFLIX, 128, CommConfig(transmit=TransmitMode.P_AND_Q))
        assert q.sync_values == 128 * NETFLIX.n
        assert pq.sync_values == 128 * (NETFLIX.m + NETFLIX.n)

    def test_total_bytes(self):
        plan = CommPlan.for_dataset(NETFLIX, 128, CommConfig())
        total = plan.total_bytes(epochs=20)
        assert total == 20 * (plan.epoch_pull + plan.epoch_push) + plan.final_push_extra

    def test_total_bytes_invalid(self):
        plan = CommPlan.for_dataset(NETFLIX, 128, CommConfig())
        with pytest.raises(ValueError):
            plan.total_bytes(0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CommPlan.for_dataset(NETFLIX, 0, CommConfig())


class TestCommModel:
    def test_comm_uses_raw_bus(self):
        model = CommModel(CommBackendKind.COMM)
        assert model.transfer_time(PCIE3_X16, 1e9) == pytest.approx(
            PCIE3_X16.transfer_time(1e9)
        )

    def test_comm_p_slowdown(self):
        fast = CommModel(CommBackendKind.COMM)
        slow = CommModel(CommBackendKind.COMM_P)
        nbytes = 500e6
        ratio = slow.transfer_time(PCIE3_X16, nbytes) / fast.transfer_time(PCIE3_X16, nbytes)
        # Table 5 measures COMM-P ~6.6-7.2x slower
        assert 6.0 < ratio < 7.5

    def test_zero_bytes_free(self):
        assert CommModel(CommBackendKind.COMM_P).transfer_time(PCIE3_X16, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CommModel().transfer_time(PCIE3_X16, -5)

    def test_pull_push_symmetric(self):
        model = CommModel()
        plan = CommPlan.for_dataset(YAHOO_R1, 128, CommConfig())
        assert model.pull_time(PCIE3_X16, plan) == model.push_time(PCIE3_X16, plan)


class TestBuffers:
    def test_pull_roundtrip_fp32(self):
        buf = PullBuffer((4, 6))
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        buf.deposit(data)
        np.testing.assert_array_equal(buf.read(), data)

    def test_pull_fp16_roundtrip_close(self):
        buf = PullBuffer((4, 6), fp16=True)
        data = np.linspace(0.1, 2.0, 24, dtype=np.float32).reshape(4, 6)
        buf.deposit(data)
        np.testing.assert_allclose(buf.read(), data, rtol=1e-3)

    def test_pull_fp16_half_footprint(self):
        assert PullBuffer((10, 10), fp16=True).nbytes == PullBuffer((10, 10)).nbytes // 2

    def test_copy_counters(self):
        buf = PullBuffer((2, 2))
        buf.deposit(np.zeros((2, 2), dtype=np.float32))
        buf.read()
        buf.read()
        assert buf.copies_in == 1
        assert buf.reads == 2

    def test_shape_mismatch_rejected(self):
        buf = PullBuffer((2, 2))
        with pytest.raises(ValueError, match="shape"):
            buf.deposit(np.zeros((3, 3), dtype=np.float32))

    def test_push_consume_zero_copy_fp32(self):
        buf = PushBuffer((3, 3))
        data = np.ones((3, 3), dtype=np.float32)
        buf.deposit(data)
        view = buf.consume()
        assert view is buf._buf  # in-place consumption
        assert buf.consumed == 1

    def test_push_fp16_decompresses(self):
        buf = PushBuffer((2, 2), fp16=True)
        buf.deposit(np.full((2, 2), 0.5, dtype=np.float32))
        out = buf.consume()
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, 0.5)
