"""Unit tests for the energy model."""

import pytest

from repro.core.config import HCCConfig
from repro.core.framework import HCCMF
from repro.data.datasets import NETFLIX
from repro.experiments.energy import compare_platform_energy, energy_of
from repro.hardware.energy import (
    IDLE_POWER_FRACTION,
    processor_energy,
    run_energy,
)
from repro.hardware.processor import Processor
from repro.hardware.specs import RTX_2080S, XEON_6242
from repro.hardware.topology import paper_workstation


class TestProcessorEnergy:
    def test_fully_busy(self):
        p = Processor(RTX_2080S)
        assert processor_energy(p, 10.0, 10.0) == pytest.approx(250.0 * 10)

    def test_fully_idle(self):
        p = Processor(RTX_2080S)
        assert processor_energy(p, 0.0, 10.0) == pytest.approx(
            250.0 * 10 * IDLE_POWER_FRACTION
        )

    def test_mixed(self):
        p = Processor(XEON_6242)
        j = processor_energy(p, 4.0, 10.0, idle_fraction=0.5)
        assert j == pytest.approx(150.0 * (4.0 + 0.5 * 6.0))

    def test_validation(self):
        p = Processor(XEON_6242)
        with pytest.raises(ValueError):
            processor_energy(p, -1.0, 10.0)
        with pytest.raises(ValueError):
            processor_energy(p, 11.0, 10.0)
        with pytest.raises(ValueError):
            processor_energy(p, 1.0, 10.0, idle_fraction=2.0)


class TestRunEnergy:
    def test_special_worker_counted_once(self):
        plat = paper_workstation(16)
        busy = {w.name: 1.0 for w in plat.workers}
        report = run_energy(plat, busy, total_seconds=2.0, updates=1e6)
        # 4 workers but the time-shared one folds into the server's chip
        assert len(report.per_worker_joules) == 3
        assert report.server_joules > 0

    def test_efficiency_metric(self):
        plat = paper_workstation(16)
        busy = {w.name: 1.0 for w in plat.workers}
        report = run_energy(plat, busy, 2.0, updates=2e6)
        assert report.joules_per_mupdate == pytest.approx(report.total_joules / 2)
        assert report.watt_hours == pytest.approx(report.total_joules / 3600)

    def test_energy_of_train_result(self):
        plat = paper_workstation(16)
        res = HCCMF(plat, NETFLIX, HCCConfig(k=128, epochs=20)).train()
        report = energy_of(res, plat)
        assert report.total_joules > 0
        # no worker can be busier than the run is long
        peak = max(report.per_worker_joules.values())
        tdp_max = max(w.spec.tdp_watts for w in plat.workers)
        assert peak <= tdp_max * res.total_time * (1 + 1e-6)


class TestPlatformEnergyTable:
    @pytest.fixture(scope="class")
    def table(self):
        return compare_platform_energy()

    def test_gpu_more_efficient_than_cpu(self, table):
        rows = table.row_map()
        assert rows["2080S"][4] < rows["6242"][4]  # J per Mupdate

    def test_collaboration_costs_more_energy_than_single_gpu(self, table):
        """Finishing sooner does not make 4 chips cheaper than 1: the
        energy bill quantifies Figure 3's hidden trade-off."""
        rows = table.row_map()
        assert rows["6242-2080S"][3] > rows["2080S"][3]

    def test_collaboration_still_faster(self, table):
        rows = table.row_map()
        assert rows["6242-2080S"][1] < rows["2080S"][1]
