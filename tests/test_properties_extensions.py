"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveRepartitioner
from repro.core.convergence import epochs_to_target, fit_exponential
from repro.hardware.energy import processor_energy
from repro.hardware.processor import Processor
from repro.hardware.specs import RTX_2080S, XEON_6242
from repro.mf.schedules import BoldDriver, ExponentialDecay, InverseTimeDecay


class TestScheduleProperties:
    @given(
        lr0=st.floats(1e-5, 1.0),
        decay=st.floats(0.0, 5.0),
        e1=st.integers(0, 500),
        e2=st.integers(0, 500),
    )
    def test_inverse_time_monotone(self, lr0, decay, e1, e2):
        s = InverseTimeDecay(lr0, decay)
        lo, hi = sorted((e1, e2))
        assert s(hi) <= s(lo) + 1e-12
        assert 0 < s(hi) <= lr0

    @given(
        lr0=st.floats(1e-5, 1.0),
        gamma=st.floats(0.01, 1.0, exclude_min=True),
        epoch=st.integers(0, 200),
    )
    def test_exponential_bounded(self, lr0, gamma, epoch):
        s = ExponentialDecay(lr0, gamma)
        # tiny gamma at large epochs underflows to exactly 0.0 (a no-op
        # learning rate), which is still within bounds
        assert 0 <= s(epoch) <= lr0 * (1 + 1e-12)

    @given(losses=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=30))
    def test_bold_driver_stays_positive(self, losses):
        s = BoldDriver(0.1, grow=1.05, shrink=0.5)
        for loss in losses:
            s.observe(loss)
            assert s(0) > 0


class TestAdaptiveProperties:
    @given(
        times=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8),
    )
    def test_repartition_stays_on_simplex(self, times):
        n = len(times)
        c = AdaptiveRepartitioner([1.0 / n] * n, imbalance_threshold=0.01,
                                  cooldown_epochs=0)
        new = c.observe(times)
        if new is not None:
            assert abs(new.sum() - 1.0) < 1e-9
            assert np.all(new > 0)

    @given(
        times=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8),
    )
    def test_repartition_equalizes_under_frozen_rates(self, times):
        n = len(times)
        x0 = np.full(n, 1.0 / n)
        c = AdaptiveRepartitioner(x0, imbalance_threshold=0.01, cooldown_epochs=0)
        new = c.observe(times)
        if new is None:
            return
        rates = x0 / np.asarray(times)
        predicted = new / rates
        assert np.allclose(predicted, predicted[0], rtol=1e-9)


class TestEnergyProperties:
    @given(
        busy=st.floats(0.0, 100.0),
        extra=st.floats(0.0, 100.0),
        idle_fraction=st.floats(0.0, 1.0),
    )
    def test_energy_bounds(self, busy, extra, idle_fraction):
        total = busy + extra
        p = Processor(RTX_2080S)
        j = processor_energy(p, busy, total, idle_fraction)
        tdp = p.spec.tdp_watts
        assert idle_fraction * tdp * total - 1e-9 <= j <= tdp * total + 1e-9

    @given(busy=st.floats(0.0, 50.0), total=st.floats(50.0, 100.0))
    def test_busier_costs_more(self, busy, total):
        p = Processor(XEON_6242)
        j_low = processor_energy(p, busy, total)
        j_high = processor_energy(p, min(busy + 10, total), total)
        assert j_high >= j_low - 1e-9


class TestConvergenceProperties:
    @given(
        start=st.floats(0.5, 5.0),
        drop=st.floats(0.01, 0.9),
        length=st.integers(2, 30),
    )
    def test_epochs_to_target_monotone_in_target(self, start, drop, length):
        curve = [start * (1 - drop) ** i for i in range(length)]
        hard = epochs_to_target(curve, curve[-1])
        easy = epochs_to_target(curve, curve[0])
        assert easy <= hard

    @given(
        floor=st.floats(0.1, 2.0),
        amplitude=st.floats(0.1, 2.0),
        tau=st.floats(1.0, 10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_fit_recovers_floor_within_tolerance(self, floor, amplitude, tau):
        epochs = np.arange(1, 25)
        curve = floor + amplitude * np.exp(-(epochs - 1) / tau)
        fit = fit_exponential(curve)
        assert abs(fit.floor - floor) < 0.1 * (floor + amplitude)
        assert fit.residual < 0.05 * (floor + amplitude)
