"""Unit tests for canonical experiment platforms."""

import pytest

from repro.core.config import CommBackendKind, PartitionStrategy, TransmitMode
from repro.experiments.platforms import (
    build_combo,
    combo_price,
    hetero_platform,
    overall_platform,
    single,
    workers_platform,
)


class TestCanonicalPlatforms:
    def test_overall_uses_16_threads(self):
        assert overall_platform().server.threads == 16

    def test_hetero_uses_10_threads(self):
        assert hetero_platform().server.threads == 10

    def test_workers_platform_scales(self):
        for n in (1, 2, 3, 4):
            assert workers_platform(n).n_workers == n

    def test_workers_platform_order(self):
        """Figure 9 stacking order: 2080S, 6242, 2080, 6242L."""
        names = [w.spec.name for w in workers_platform(4).workers]
        assert names == ["2080S", "6242", "2080", "6242L"]

    def test_fourth_worker_time_shared(self):
        plat = workers_platform(4)
        assert plat.workers[3].time_share < 1.0
        assert all(w.time_share == 1.0 for w in plat.workers[:3])

    def test_workers_platform_bounds(self):
        with pytest.raises(ValueError):
            workers_platform(0)
        with pytest.raises(ValueError):
            workers_platform(5)


class TestSingle:
    def test_lookup(self):
        plat = single("2080S")
        assert plat.workers[0].spec.name == "2080S"

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown processor"):
            single("3090")


class TestBuildCombo:
    def test_cpu_gpu_combo(self):
        plat, cfg = build_combo(["6242", "2080S"])
        kinds = sorted(w.kind.value for w in plat.workers)
        assert kinds == ["cpu", "gpu"]
        assert cfg.partition is PartitionStrategy.AUTO

    def test_cpu_worker_time_shares_server(self):
        plat, _ = build_combo(["6242", "2080"])
        cpu = [w for w in plat.workers if w.is_cpu][0]
        assert cpu.time_share < 1.0

    def test_gpu_only_combo_has_management_server(self):
        plat, _ = build_combo(["2080", "2080S"])
        assert plat.server.is_cpu
        assert all(w.is_gpu for w in plat.workers)

    def test_bad_comm_flags(self):
        _, cfg = build_combo(["6242", "2080S"], bad_comm=True)
        assert cfg.comm.backend is CommBackendKind.COMM_P
        assert cfg.comm.transmit is TransmitMode.P_AND_Q

    def test_unbalanced_flag(self):
        _, cfg = build_combo(["6242", "2080S"], unbalanced=True)
        assert cfg.partition is PartitionStrategy.EVEN

    def test_bad_threads_flag(self):
        plat, cfg = build_combo(["6242", "2080S"], bad_threads=True)
        cpu = [w for w in plat.workers if w.is_cpu][0]
        assert cpu.runtime_penalty < 1.0
        assert cfg.partition is PartitionStrategy.DP0

    def test_empty_names(self):
        with pytest.raises(ValueError):
            build_combo([])

    def test_combo_price(self):
        assert combo_price(["6242", "2080S"]) == pytest.approx(2529.0 + 699.0)
