"""Unit tests for model checkpointing."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    load_checkpoint,
    resume_hogwild,
    save_checkpoint,
)
from repro.mf.model import MFModel
from repro.mf.sgd import HogwildSGD


@pytest.fixture
def trained_ckpt(small_ratings):
    h = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=2)
    h.fit(small_ratings, epochs=4)
    return Checkpoint(
        model=h.model,
        epoch=4,
        rmse_history=h.history.rmse,
        config={"lr": 0.01, "reg": 0.01, "seed": 2, "batch_size": 4096},
    )


class TestSaveLoad:
    def test_exact_roundtrip(self, trained_ckpt, tmp_path):
        path = tmp_path / "ckpt"
        save_checkpoint(trained_ckpt, path)
        back = load_checkpoint(path)
        np.testing.assert_array_equal(back.model.P, trained_ckpt.model.P)
        np.testing.assert_array_equal(back.model.Q, trained_ckpt.model.Q)
        assert back.epoch == 4
        assert back.rmse_history == pytest.approx(trained_ckpt.rmse_history)
        assert back.config["lr"] == 0.01

    def test_npz_suffix_normalized(self, trained_ckpt, tmp_path):
        save_checkpoint(trained_ckpt, tmp_path / "c.npz")
        assert load_checkpoint(tmp_path / "c").epoch == 4

    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nothing")

    def test_version_checked(self, trained_ckpt, tmp_path):
        import json

        path = tmp_path / "c"
        save_checkpoint(trained_ckpt, path)
        meta = json.loads((tmp_path / "c.json").read_text())
        meta["version"] = CHECKPOINT_VERSION + 99
        (tmp_path / "c.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_shape_mismatch_detected(self, trained_ckpt, tmp_path):
        import json

        path = tmp_path / "c"
        save_checkpoint(trained_ckpt, path)
        meta = json.loads((tmp_path / "c.json").read_text())
        meta["shape"]["k"] = 99
        (tmp_path / "c.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="disagrees"):
            load_checkpoint(path)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(model=MFModel.init(2, 2, 2), epoch=-1)


class TestResume:
    def test_resume_continues_convergence(self, trained_ckpt, small_ratings, tmp_path):
        save_checkpoint(trained_ckpt, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        resumed = resume_hogwild(loaded, small_ratings, extra_epochs=4)
        assert resumed.epoch == 8
        assert len(resumed.rmse_history) == 8
        assert resumed.rmse_history[-1] < trained_ckpt.rmse_history[-1]

    def test_resume_hyperparam_override(self, trained_ckpt, small_ratings):
        resumed = resume_hogwild(trained_ckpt, small_ratings, 1, lr=0.123)
        assert resumed.config["lr"] == 0.123

    def test_resume_validation(self, trained_ckpt, small_ratings):
        with pytest.raises(ValueError):
            resume_hogwild(trained_ckpt, small_ratings, extra_epochs=0)

    def test_full_run_close_to_resumed_run(self, small_ratings, tmp_path):
        """4 + 4 resumed epochs land near a straight 8-epoch run (exact
        equality is not expected: the resume uses a fresh RNG stream)."""
        h8 = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=2)
        h8.fit(small_ratings, epochs=8)
        h4 = HogwildSGD(k=8, lr=0.01, reg=0.01, seed=2)
        h4.fit(small_ratings, epochs=4)
        ckpt = Checkpoint(
            model=h4.model, epoch=4, rmse_history=h4.history.rmse,
            config={"lr": 0.01, "reg": 0.01, "seed": 2, "batch_size": 4096},
        )
        resumed = resume_hogwild(ckpt, small_ratings, extra_epochs=4)
        assert resumed.rmse_history[-1] == pytest.approx(
            h8.history.rmse[-1], abs=0.05
        )


class TestAtomicWrites:
    def test_no_temp_residue_after_save(self, trained_ckpt, tmp_path):
        save_checkpoint(trained_ckpt, tmp_path / "c")
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_write_preserves_previous_checkpoint(
        self, trained_ckpt, tmp_path, monkeypatch
    ):
        """A crash mid-write (simulated: the factor serializer raises)
        must leave the previous checkpoint readable and no temp debris —
        that is the whole point of writing checkpoints atomically."""
        import dataclasses

        import repro.core.checkpoint as ck

        path = tmp_path / "c"
        save_checkpoint(trained_ckpt, path)

        def disk_full(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(ck.np, "savez_compressed", disk_full)
        newer = dataclasses.replace(trained_ckpt, epoch=9)
        with pytest.raises(OSError):
            save_checkpoint(newer, path)
        monkeypatch.undo()

        back = load_checkpoint(path)
        assert back.epoch == 4  # the old checkpoint, intact
        np.testing.assert_array_equal(back.model.P, trained_ckpt.model.P)
        assert not list(tmp_path.glob("*.tmp"))

    def test_version_error_names_both_versions(self, trained_ckpt, tmp_path):
        import json

        path = tmp_path / "c"
        save_checkpoint(trained_ckpt, path)
        meta = json.loads((tmp_path / "c.json").read_text())
        meta["version"] = CHECKPOINT_VERSION + 99
        (tmp_path / "c.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError) as ei:
            load_checkpoint(path)
        msg = str(ei.value)
        assert str(CHECKPOINT_VERSION + 99) in msg   # what was on disk
        assert f"version {CHECKPOINT_VERSION}" in msg  # what this build reads
