"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.data.ratings import RatingMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_ratings() -> RatingMatrix:
    """A fixed 6x5 rating matrix with 15 entries."""
    dense = np.array(
        [
            [5, 0, 3, 0, 1],
            [4, 2, 0, 0, 0],
            [0, 3, 1, 5, 0],
            [1, 5, 0, 3, 0],
            [4, 0, 0, 0, 2],
            [0, 0, 3, 4, 0],
        ],
        dtype=np.float32,
    )
    return RatingMatrix.from_dense(dense)


@pytest.fixture
def small_ratings() -> RatingMatrix:
    """A synthetic Netflix-shaped matrix, ~8k entries."""
    return NETFLIX.scaled(8000).generate(seed=3)


@pytest.fixture
def medium_ratings() -> RatingMatrix:
    """A synthetic Netflix-shaped matrix, ~25k entries."""
    return NETFLIX.scaled(25_000).generate(seed=5)
