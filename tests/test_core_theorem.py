"""Tests for the Theorem 1 numerical verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theorem import (
    Theorem1Report,
    equalizing_partition,
    makespan,
    verify_theorem1,
)


class TestEqualizingPartition:
    def test_zero_fixed_costs_reduce_to_dp0(self):
        """With b = 0, Theorem 1's solution is Eq. 6's throughput split."""
        a = [1.0, 2.0, 4.0]
        x = equalizing_partition(a, [0, 0, 0])
        np.testing.assert_allclose(x, [4 / 7, 2 / 7, 1 / 7])

    def test_levels_equalized(self):
        a = [1.0, 3.0, 0.5]
        b = [0.05, 0.01, 0.02]
        x = equalizing_partition(a, b)
        levels = np.asarray(a) * x + np.asarray(b)
        np.testing.assert_allclose(levels, levels[0])

    def test_simplex(self):
        x = equalizing_partition([2.0, 5.0], [0.1, 0.3])
        assert x.sum() == pytest.approx(1.0)
        assert np.all(x >= 0)

    def test_higher_fixed_cost_gets_less_data(self):
        x = equalizing_partition([1.0, 1.0], [0.0, 0.4])
        assert x[1] < x[0]

    def test_infeasible_detected(self):
        # worker 1's fixed cost alone dwarfs any achievable common level
        with pytest.raises(ValueError, match="non-negative shares"):
            equalizing_partition([1.0, 1.0], [0.0, 100.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            equalizing_partition([], [])
        with pytest.raises(ValueError):
            equalizing_partition([0.0], [0.0])
        with pytest.raises(ValueError):
            equalizing_partition([1.0, 2.0], [0.0])


class TestVerify:
    def test_holds_on_paper_like_costs(self):
        # a_i ~ independent times of the testbed, b_i ~ comm times
        report = verify_theorem1(
            a=[0.36, 0.28, 0.094, 0.108],   # seconds per full dataset
            b=[0.001, 0.002, 0.012, 0.012],  # pull+push
            trials=1500,
            seed=1,
        )
        assert isinstance(report, Theorem1Report)
        assert report.holds
        assert report.best_perturbed_makespan >= report.optimal_makespan - 1e-9

    def test_makespan_formula(self):
        assert makespan([2.0, 1.0], [0.1, 0.3], [0.5, 0.5]) == pytest.approx(1.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            verify_theorem1([1.0], [0.0], trials=0)
        with pytest.raises(ValueError):
            verify_theorem1([1.0], [0.0], scale=1.5)

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6),
        seed=st.integers(0, 100),
    )
    def test_theorem_holds_property(self, a, seed):
        """Random per-unit costs with zero fixed costs: the equalizer is
        never beaten by random simplex points."""
        report = verify_theorem1(a, [0.0] * len(a), trials=300, seed=seed)
        assert report.holds
