"""Integration tests for the multi-process shared-memory trainer.

These spawn real OS processes; sizes are kept small so the whole module
runs in a few seconds.
"""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.parallel.executor import ParallelTrainResult, SharedMemoryTrainer


@pytest.fixture(scope="module")
def data():
    return NETFLIX.scaled(6000).generate(seed=4)


class TestSharedMemoryTrainer:
    def test_converges_with_two_workers(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = trainer.train(epochs=4)
        assert len(res.rmse_history) == 4
        assert res.rmse_history[-1] < res.rmse_history[0]
        assert np.all(np.isfinite(res.model.P))

    def test_single_worker(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=1, lr=0.01, seed=0)
        res = trainer.train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_custom_fractions(self, data):
        trainer = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, fractions=[0.3, 0.7], seed=0
        )
        res = trainer.train(epochs=2)
        assert res.n_workers == 2
        assert res.updates_per_second > 0

    def test_worker_failure_raises_cleanly(self, data):
        """Fault injection: a crashed worker must surface as a clear
        error, not a hang, and shared memory must be reclaimed (the
        next run succeeds)."""
        bad = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, fail_worker_at=(1, 1)
        )
        with pytest.raises(RuntimeError, match="worker process failed"):
            bad.train(epochs=3)
        # recovery: fresh trainer works
        ok = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = ok.train(epochs=2)
        assert len(res.rmse_history) == 2

    def test_validation(self, data):
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=2, fractions=[1.0])
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, k=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data).train(epochs=0)


class TestUpdatesPerSecond:
    def _result(self, elapsed: float) -> ParallelTrainResult:
        return ParallelTrainResult(
            rmse_history=[1.0],
            elapsed_seconds=elapsed,
            epochs=1,
            n_workers=1,
            nnz=1000,
            model=None,
        )

    def test_normal_rate(self):
        assert self._result(2.0).updates_per_second == pytest.approx(500.0)

    def test_zero_elapsed_returns_zero_not_inf(self):
        """Regression: sub-clock-resolution runs used to report inf,
        which poisoned any mean/table built from the rate."""
        assert self._result(0.0).updates_per_second == 0.0
        assert self._result(-1e-9).updates_per_second == 0.0


class TestChannelStrategies:
    """Strategies 2/3 in the process plane: the channel stack drives
    the wire format, and the metrics registry proves the byte math."""

    @staticmethod
    def _wire_bytes(tel, name):
        return sum(s.value for s in tel.registry.samples() if s.name == name)

    def test_fp16_matches_fp32_with_half_the_wire_bytes(self, data):
        from repro.engine import Fp16Channel, QOnlyChannel
        from repro.obs import Telemetry

        tel32, tel16 = Telemetry(), Telemetry()
        fp32 = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            channel=QOnlyChannel(), telemetry=tel32,
        ).train(epochs=3)
        fp16 = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            channel=Fp16Channel(QOnlyChannel()), telemetry=tel16,
        ).train(epochs=3)
        # Strategy 2's claim: half-precision transmission, same accuracy
        assert fp16.rmse_history[-1] == pytest.approx(
            fp32.rmse_history[-1], rel=0.02
        )
        for name in ("bytes_pulled_total", "bytes_pushed_total"):
            full = self._wire_bytes(tel32, name)
            half = self._wire_bytes(tel16, name)
            assert full > 0
            assert half == pytest.approx(full / 2)

    def test_partition_plan_accepted(self, data):
        from repro.core.partition import PartitionPlan

        trainer = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            partition=PartitionPlan("dp0", (0.35, 0.65)),
        )
        assert trainer.fractions == pytest.approx([0.35, 0.65])
        res = trainer.train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_double_buffer_stack_runs(self, data):
        from repro.engine import DoubleBufferChannel, Fp16Channel, QOnlyChannel

        stack = DoubleBufferChannel(Fp16Channel(QOnlyChannel()))
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, channel=stack
        ).train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_config_selects_the_channel_stack(self, data):
        from repro.core.config import CommConfig, HCCConfig

        trainer = SharedMemoryTrainer(
            data, config=HCCConfig(comm=CommConfig(fp16=True))
        )
        assert trainer.channel.wire_is_fp16
        assert trainer.channel.describe() == "fp16(q-only(full))"


class TestBarrierDiagnostics:
    """Rendezvous failures name the missing ranks, and the timeout is
    configurable through HCCConfig."""

    def test_sync_error_names_the_missing_rank(self, data):
        from repro.engine import WorkerSyncError

        bad = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, fail_worker_at=(1, 1)
        )
        with pytest.raises(WorkerSyncError) as excinfo:
            bad.train(epochs=3)
        err = excinfo.value
        # worker-0's progress stamp races the broken barrier, so the
        # missing set may or may not include it — but the crashed rank
        # is always reported
        assert 1 in err.missing_ranks
        assert "worker-1" in str(err)
        assert err.epoch == 1

    def test_config_sets_barrier_timeout(self, data):
        from repro.core.config import HCCConfig

        trainer = SharedMemoryTrainer(
            data, config=HCCConfig(barrier_timeout_s=7.5)
        )
        assert trainer.barrier_timeout_s == 7.5

    def test_explicit_timeout_overrides_config(self, data):
        from repro.core.config import HCCConfig

        trainer = SharedMemoryTrainer(
            data, config=HCCConfig(barrier_timeout_s=7.5), barrier_timeout_s=3.0
        )
        assert trainer.barrier_timeout_s == 3.0

    def test_nonpositive_timeout_rejected(self):
        from repro.core.config import HCCConfig

        with pytest.raises(ValueError, match="barrier_timeout_s"):
            HCCConfig(barrier_timeout_s=0.0)


class TestExecutorTelemetry:
    def test_disabled_telemetry_takes_zero_overhead_path(self, data, monkeypatch):
        """telemetry=None must never touch the span-ring machinery."""
        from repro.obs import spans

        calls = []
        original = spans.SpanRing.create.__func__

        def tracking(cls, *args, **kwargs):
            calls.append(args)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(
            spans.SpanRing, "create", classmethod(tracking)
        )
        res = SharedMemoryTrainer(data, k=8, n_workers=2, seed=0).train(epochs=2)
        assert res.telemetry is None
        assert calls == []

    def test_instrumented_run_matches_uninstrumented_numerics(self, data):
        """Telemetry must observe, not perturb: same seed, same RMSE."""
        from repro.obs import Telemetry

        plain = SharedMemoryTrainer(data, k=8, n_workers=2, seed=0).train(epochs=2)
        tel = Telemetry()
        traced = SharedMemoryTrainer(
            data, k=8, n_workers=2, seed=0, telemetry=tel
        ).train(epochs=2)
        assert traced.rmse_history == pytest.approx(plain.rmse_history)
        assert traced.telemetry is tel
