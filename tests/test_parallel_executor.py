"""Integration tests for the multi-process shared-memory trainer.

These spawn real OS processes; sizes are kept small so the whole module
runs in a few seconds.
"""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.parallel.executor import SharedMemoryTrainer


@pytest.fixture(scope="module")
def data():
    return NETFLIX.scaled(6000).generate(seed=4)


class TestSharedMemoryTrainer:
    def test_converges_with_two_workers(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = trainer.train(epochs=4)
        assert len(res.rmse_history) == 4
        assert res.rmse_history[-1] < res.rmse_history[0]
        assert np.all(np.isfinite(res.model.P))

    def test_single_worker(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=1, lr=0.01, seed=0)
        res = trainer.train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_custom_fractions(self, data):
        trainer = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, fractions=[0.3, 0.7], seed=0
        )
        res = trainer.train(epochs=2)
        assert res.n_workers == 2
        assert res.updates_per_second > 0

    def test_worker_failure_raises_cleanly(self, data):
        """Fault injection: a crashed worker must surface as a clear
        error, not a hang, and shared memory must be reclaimed (the
        next run succeeds)."""
        bad = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, fail_worker_at=(1, 1)
        )
        with pytest.raises(RuntimeError, match="worker process failed"):
            bad.train(epochs=3)
        # recovery: fresh trainer works
        ok = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = ok.train(epochs=2)
        assert len(res.rmse_history) == 2

    def test_validation(self, data):
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=2, fractions=[1.0])
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, k=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data).train(epochs=0)
