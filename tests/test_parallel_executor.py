"""Integration tests for the multi-process shared-memory trainer.

These spawn real OS processes; sizes are kept small so the whole module
runs in a few seconds.
"""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.parallel.executor import ParallelTrainResult, SharedMemoryTrainer


@pytest.fixture(scope="module")
def data():
    return NETFLIX.scaled(6000).generate(seed=4)


class TestSharedMemoryTrainer:
    def test_converges_with_two_workers(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = trainer.train(epochs=4)
        assert len(res.rmse_history) == 4
        assert res.rmse_history[-1] < res.rmse_history[0]
        assert np.all(np.isfinite(res.model.P))

    def test_single_worker(self, data):
        trainer = SharedMemoryTrainer(data, k=8, n_workers=1, lr=0.01, seed=0)
        res = trainer.train(epochs=2)
        assert res.rmse_history[-1] < res.rmse_history[0]

    def test_custom_fractions(self, data):
        trainer = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, fractions=[0.3, 0.7], seed=0
        )
        res = trainer.train(epochs=2)
        assert res.n_workers == 2
        assert res.updates_per_second > 0

    def test_worker_failure_raises_cleanly(self, data):
        """Fault injection: a crashed worker must surface as a clear
        error, not a hang, and shared memory must be reclaimed (the
        next run succeeds)."""
        bad = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, fail_worker_at=(1, 1)
        )
        with pytest.raises(RuntimeError, match="worker process failed"):
            bad.train(epochs=3)
        # recovery: fresh trainer works
        ok = SharedMemoryTrainer(data, k=8, n_workers=2, lr=0.01, seed=0)
        res = ok.train(epochs=2)
        assert len(res.rmse_history) == 2

    def test_validation(self, data):
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, n_workers=2, fractions=[1.0])
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data, k=0)
        with pytest.raises(ValueError):
            SharedMemoryTrainer(data).train(epochs=0)


class TestUpdatesPerSecond:
    def _result(self, elapsed: float) -> ParallelTrainResult:
        return ParallelTrainResult(
            rmse_history=[1.0],
            elapsed_seconds=elapsed,
            epochs=1,
            n_workers=1,
            nnz=1000,
            model=None,
        )

    def test_normal_rate(self):
        assert self._result(2.0).updates_per_second == pytest.approx(500.0)

    def test_zero_elapsed_returns_zero_not_inf(self):
        """Regression: sub-clock-resolution runs used to report inf,
        which poisoned any mean/table built from the rate."""
        assert self._result(0.0).updates_per_second == 0.0
        assert self._result(-1e-9).updates_per_second == 0.0


class TestExecutorTelemetry:
    def test_disabled_telemetry_takes_zero_overhead_path(self, data, monkeypatch):
        """telemetry=None must never touch the span-ring machinery."""
        from repro.obs import spans

        calls = []
        original = spans.SpanRing.create.__func__

        def tracking(cls, *args, **kwargs):
            calls.append(args)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(
            spans.SpanRing, "create", classmethod(tracking)
        )
        res = SharedMemoryTrainer(data, k=8, n_workers=2, seed=0).train(epochs=2)
        assert res.telemetry is None
        assert calls == []

    def test_instrumented_run_matches_uninstrumented_numerics(self, data):
        """Telemetry must observe, not perturb: same seed, same RMSE."""
        from repro.obs import Telemetry

        plain = SharedMemoryTrainer(data, k=8, n_workers=2, seed=0).train(epochs=2)
        tel = Telemetry()
        traced = SharedMemoryTrainer(
            data, k=8, n_workers=2, seed=0, telemetry=tel
        ).train(epochs=2)
        assert traced.rmse_history == pytest.approx(plain.rmse_history)
        assert traced.telemetry is tel
