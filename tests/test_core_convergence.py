"""Unit tests for convergence diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import (
    ExponentialFit,
    epochs_to_target,
    fit_exponential,
    speedup_at_target,
    time_to_target,
)


class TestEpochsToTarget:
    def test_exact_epoch(self):
        assert epochs_to_target([1.0, 0.8, 0.6], 0.8) == pytest.approx(2.0)

    def test_interpolation(self):
        # crosses 0.7 halfway between epochs 2 and 3
        assert epochs_to_target([1.0, 0.8, 0.6], 0.7) == pytest.approx(2.5)

    def test_immediate(self):
        assert epochs_to_target([0.5, 0.4], 0.9) == 1.0

    def test_never_reached(self):
        assert epochs_to_target([1.0, 0.9], 0.1) == float("inf")

    def test_flat_segment(self):
        assert epochs_to_target([1.0, 0.8, 0.8], 0.8) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            epochs_to_target([], 0.5)


class TestTimeAndSpeedup:
    def test_time_scales(self):
        assert time_to_target([1.0, 0.8], 2.0, 0.8) == pytest.approx(4.0)

    def test_time_validation(self):
        with pytest.raises(ValueError):
            time_to_target([1.0], 0.0, 0.5)

    def test_speedup_identical_curves(self):
        curve = [1.0, 0.8, 0.7]
        # same curve, B's epochs twice as long -> A is 2x faster
        assert speedup_at_target(curve, 1.0, curve, 2.0) == pytest.approx(2.0)

    def test_speedup_default_target(self):
        a = [1.0, 0.7, 0.5]
        b = [1.0, 0.9, 0.8]
        s = speedup_at_target(a, 1.0, b, 1.0)  # target = max(0.5, 0.8) = 0.8
        assert s > 1.0  # A reaches 0.8 sooner

    def test_speedup_unreachable(self):
        with pytest.raises(ValueError):
            speedup_at_target([1.0, 0.9], 1.0, [1.0, 0.95], 1.0, target=0.1)


class TestExponentialFit:
    def test_recovers_known_parameters(self):
        epochs = np.arange(1, 21)
        truth = 0.6 + 0.5 * np.exp(-(epochs - 1) / 4.0)
        fit = fit_exponential(truth)
        assert fit.floor == pytest.approx(0.6, abs=0.03)
        assert fit.tau == pytest.approx(4.0, rel=0.15)
        assert fit.residual < 0.01

    def test_predict_matches_curve(self):
        epochs = np.arange(1, 15)
        truth = 0.9 + 0.3 * np.exp(-(epochs - 1) / 3.0)
        fit = fit_exponential(truth)
        for e in (1, 5, 10):
            assert fit.predict(e) == pytest.approx(truth[e - 1], abs=0.02)

    def test_epochs_to_within(self):
        fit = ExponentialFit(floor=0.5, amplitude=0.4, tau=3.0, residual=0.0)
        e = fit.epochs_to_within(0.04)
        # 0.4*exp(-(e-1)/3) = 0.04 -> e = 1 + 3 ln 10
        assert e == pytest.approx(1 + 3 * np.log(10), rel=1e-6)
        with pytest.raises(ValueError):
            fit.epochs_to_within(0.0)

    def test_fits_real_training_curve(self, small_ratings):
        from repro.mf.sgd import HogwildSGD

        h = HogwildSGD(k=8, lr=0.01, seed=0)
        h.fit(small_ratings, epochs=12)
        fit = fit_exponential(h.history.rmse)
        assert fit.floor < h.history.rmse[-1]
        assert fit.residual < 0.05

    def test_short_curve_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0, 0.9])

    def test_non_decreasing_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0, 1.1, 1.2, 1.3])
