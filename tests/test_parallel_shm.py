"""Unit tests for shared-memory array helpers."""

import numpy as np
import pytest

from repro.parallel.shm import SharedArray, SharedArraySpec


class TestSharedArray:
    def test_create_zeroed(self):
        with SharedArray.create((4, 5), "float32") as arr:
            assert arr.array.shape == (4, 5)
            assert arr.array.dtype == np.float32
            np.testing.assert_array_equal(arr.array, 0.0)

    def test_attach_sees_writes(self):
        owner = SharedArray.create((3, 3), "float32")
        try:
            owner.array[1, 1] = 42.0
            peer = SharedArray.attach(owner.spec)
            assert peer.array[1, 1] == 42.0
            peer.array[0, 0] = 7.0
            assert owner.array[0, 0] == 7.0
            peer.close()
        finally:
            owner.unlink()

    def test_spec_carries_layout(self):
        owner = SharedArray.create((2, 6), "int64")
        try:
            spec = owner.spec
            assert spec.shape == (2, 6)
            assert np.dtype(spec.dtype) == np.int64
            assert spec.nbytes == 2 * 6 * 8
        finally:
            owner.unlink()

    def test_peer_cannot_unlink(self):
        owner = SharedArray.create((2, 2), "float32")
        try:
            peer = SharedArray.attach(owner.spec)
            with pytest.raises(RuntimeError, match="owner"):
                peer.unlink()
            peer.close()
        finally:
            owner.unlink()

    def test_close_idempotent(self):
        owner = SharedArray.create((2, 2), "float32")
        owner.unlink()
        owner.close()  # no error

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SharedArray.create((0, 4), "float32")

    def test_context_manager_cleanup(self):
        with SharedArray.create((2, 2), "float32") as arr:
            spec = arr.spec
        # segment destroyed: attaching must fail
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(spec)

    def test_float64(self):
        with SharedArray.create((3,), "float64") as arr:
            arr.array[:] = [1.5, 2.5, 3.5]
            np.testing.assert_array_equal(arr.array, [1.5, 2.5, 3.5])


class TestLifecycleOnFailure:
    """The leak paths hcclint HCC101 exists to prevent."""

    def test_create_failure_unlinks_segment(self, monkeypatch):
        """If create() fails after the OS segment exists, the segment
        must not outlive the exception."""
        import repro.parallel.shm as shm_mod

        def boom(*args, **kwargs):
            raise RuntimeError("spec construction failed")

        monkeypatch.setattr(shm_mod, "SharedArraySpec", boom)
        name = "repro-test-create-leak"
        with pytest.raises(RuntimeError, match="spec construction"):
            SharedArray.create((2, 2), "float32", name=name)
        # the named segment must be gone, not leaked until reboot
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attach_with_oversized_spec_fails_cleanly(self):
        """A stale spec larger than the real segment raises, and the
        owner can still tear the segment down afterwards."""
        owner = SharedArray.create((2, 2), "float32")
        try:
            stale = SharedArraySpec(owner.spec.name, (100, 100), "float32")
            with pytest.raises((TypeError, ValueError)):
                SharedArray.attach(stale)
        finally:
            owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(owner.spec)
