"""Bench tier: the serving suite's documents, registry entry, and CLI.

``BENCH_serving.json`` must validate against the shared schema, compare
with the same noise-aware verdicts (exit 3 on an injected slowdown),
and gate on declared SLOs (exit 1) — all through the extensible suite
registry, so ``repro bench --suites serving`` works too.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.bench import (
    BenchConfig,
    available_suites,
    compare_docs,
    register_suite,
    run_suite,
)
from repro.obs.schema import validate_bench
from repro.serving.bench import ServingBenchConfig, run_serving_suite, slo_block
from repro.serving.loadgen import SLO

QUICK = BenchConfig.quick_config(nnz=1_000)
SERVING = ServingBenchConfig(requests=20, batch_size=4, concurrency=2)

EXPECTED_METRICS = {
    "serving/topk/p50_ms",
    "serving/topk/p99_ms",
    "serving/topk/qps",
    "serving/topk[fp16]/p50_ms",
    "serving/topk[fp16]/qps",
    "serving/swap/seconds",
}


@pytest.fixture(scope="module")
def quick_doc():
    return run_serving_suite(QUICK, serving=SERVING)


class TestDocument:
    def test_validates_against_shared_schema(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert quick_doc["suite"] == "serving"
        assert quick_doc["provenance"]["quick"] is True

    def test_emits_the_pinned_metric_set(self, quick_doc):
        assert {m["name"] for m in quick_doc["metrics"]} == EXPECTED_METRICS
        kinds = {m["name"]: m["kind"] for m in quick_doc["metrics"]}
        assert kinds["serving/topk/qps"] == "throughput"
        assert kinds["serving/topk/p99_ms"] == "time"

    def test_no_slo_block_unless_declared(self, quick_doc):
        assert "slo" not in quick_doc
        doc = run_serving_suite(QUICK, serving=SERVING, slo=SLO())
        assert "slo" not in doc

    def test_slo_block_shape_and_verdict(self):
        doc = run_serving_suite(
            QUICK, serving=SERVING, slo=SLO(p99_ms=1e6, min_qps=1e-3)
        )
        assert validate_bench(doc) == []
        assert doc["slo"]["ok"] is True
        assert doc["slo"]["violations"] == []
        assert doc["slo"]["targets"]["p99_ms"] == pytest.approx(1e6)
        assert set(doc["slo"]["measured"]) == {"p50_ms", "p99_ms", "qps"}

    def test_violated_slo_is_recorded(self):
        doc = run_serving_suite(QUICK, serving=SERVING, slo=SLO(p50_ms=1e-9))
        assert doc["slo"]["ok"] is False
        assert any("p50" in v for v in doc["slo"]["violations"])

    def test_slo_block_helper_uses_metric_means(self, quick_doc):
        from repro.obs.bench import MetricResult

        metrics = [
            MetricResult(name=m["name"], unit=m["unit"], kind=m["kind"],
                         repeats=tuple(m["repeats"]), meta=m.get("meta", {}))
            for m in quick_doc["metrics"]
        ]
        block = slo_block(SLO(min_qps=1e12), metrics)
        assert block["ok"] is False
        assert block["measured"]["qps"] == pytest.approx(
            next(m.mean for m in metrics if m.name == "serving/topk/qps")
        )


class TestSuiteRegistry:
    def test_serving_is_registered(self):
        suites = available_suites()
        assert suites[:3] == ("kernel", "epoch", "wire")
        assert "serving" in suites

    def test_generic_driver_runs_the_serving_section(self):
        doc = run_suite(QUICK, suites=("serving",))
        assert validate_bench(doc) == []
        assert {m["name"] for m in doc["metrics"]} == EXPECTED_METRICS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_suite("serving", lambda config: [])

    @pytest.mark.parametrize("name", ["", "a,b", " pad "])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid suite name"):
            register_suite(name, lambda config: [])


class TestRegressionGate:
    def test_injected_slowdown_regresses(self, quick_doc):
        slowed = json.loads(json.dumps(quick_doc))
        for metric in slowed["metrics"]:
            if metric["kind"] == "time":
                metric["repeats"] = [r * 3 for r in metric["repeats"]]
                for key in ("mean", "stdev", "min", "max"):
                    metric[key] = metric[key] * 3
        report = compare_docs(quick_doc, slowed, threshold_pct=5.0)
        assert not report.ok
        assert "REGRESSED" in report.render()

    def test_self_compare_is_clean(self, quick_doc):
        assert compare_docs(quick_doc, quick_doc, threshold_pct=5.0).ok


class TestServingBenchConfig:
    def test_quick_preset_shrinks_the_run(self):
        quick = ServingBenchConfig.from_bench(BenchConfig.quick_config())
        full = ServingBenchConfig.from_bench(BenchConfig())
        assert quick.requests < full.requests

    def test_validation(self):
        with pytest.raises(ValueError, match="requests"):
            ServingBenchConfig(requests=0)

    def test_loadgen_threading(self):
        lg = ServingBenchConfig(mode="poisson", rate_qps=123.0).loadgen(seed=9)
        assert lg.mode == "poisson"
        assert lg.rate_qps == pytest.approx(123.0)
        assert lg.seed == 9


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.out == "BENCH_serving.json"
        assert args.quick is False
        assert args.threshold == pytest.approx(5.0)
        assert args.slo_p99_ms is None

    def test_bad_mode_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--mode", "open"])

    def test_quick_run_writes_valid_document(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serving.json"
        assert main([
            "serve-bench", "--quick", "--nnz", "1000",
            "--requests", "20", "--out", str(out),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        assert doc["suite"] == "serving"

    def test_slo_violation_exits_one(self, capsys, tmp_path):
        assert main([
            "serve-bench", "--quick", "--nnz", "1000", "--requests", "20",
            "--out", str(tmp_path / "b.json"), "--slo-p50-ms", "1e-9",
        ]) == 1
        assert "SLO VIOLATED" in capsys.readouterr().out

    def test_met_slo_exits_zero(self, capsys, tmp_path):
        assert main([
            "serve-bench", "--quick", "--nnz", "1000", "--requests", "20",
            "--out", str(tmp_path / "b.json"), "--slo-p99-ms", "1e6",
        ]) == 0
        assert "all declared targets met" in capsys.readouterr().out

    def test_compare_detects_injected_slowdown(self, capsys, tmp_path):
        out = tmp_path / "before.json"
        assert main([
            "serve-bench", "--quick", "--nnz", "1000",
            "--requests", "20", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        for metric in doc["metrics"]:
            if metric["kind"] == "time":
                metric["repeats"] = [r * 3 for r in metric["repeats"]]
                for key in ("mean", "stdev", "min", "max"):
                    metric[key] = metric[key] * 3
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main([
            "serve-bench", "--compare", str(out), "--against", str(slowed),
        ]) == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_self_compare_passes(self, capsys, tmp_path):
        out = tmp_path / "b.json"
        assert main([
            "serve-bench", "--quick", "--nnz", "1000",
            "--requests", "20", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve-bench", "--compare", str(out), "--against", str(out),
        ]) == 0
        assert "compare: OK" in capsys.readouterr().out

    def test_compare_missing_file(self, capsys, tmp_path):
        assert main([
            "serve-bench", "--compare", str(tmp_path / "no.json"),
            "--against", str(tmp_path / "no.json"),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_bench_suites_serving(self, capsys, tmp_path):
        out = tmp_path / "via_bench.json"
        assert main([
            "bench", "--quick", "--nnz", "1000",
            "--suites", "serving", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        assert {m["name"] for m in doc["metrics"]} == EXPECTED_METRICS

    def test_bench_unknown_suite_lists_serving(self, capsys):
        assert main(["bench", "--suites", "gpu"]) == 2
        assert "serving" in capsys.readouterr().err
