"""Unit tests for execution timelines and the ASCII Gantt renderer."""

import pytest

from repro.hardware.timeline import Phase, Span, Timeline


class TestSpan:
    def test_duration(self):
        s = Span("w", Phase.COMPUTE, 1.0, 3.5)
        assert s.duration == 2.5

    def test_reversed_span_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            Span("w", Phase.PULL, 2.0, 1.0)

    def test_zero_duration_allowed(self):
        assert Span("w", Phase.SYNC, 1.0, 1.0).duration == 0.0


class TestTimeline:
    def _sample(self) -> Timeline:
        tl = Timeline()
        tl.add("a", Phase.PULL, 0.0, 1.0)
        tl.add("a", Phase.COMPUTE, 1.0, 4.0)
        tl.add("a", Phase.PUSH, 4.0, 5.0)
        tl.add("b", Phase.PULL, 0.0, 0.5)
        tl.add("b", Phase.COMPUTE, 0.5, 3.0, epoch=0)
        tl.add("server", Phase.SYNC, 5.0, 5.5)
        return tl

    def test_workers_in_first_seen_order(self):
        assert self._sample().workers() == ["a", "b", "server"]

    def test_span_bounds_and_makespan(self):
        tl = self._sample()
        assert tl.span_of() == (0.0, 5.5)
        assert tl.makespan() == 5.5

    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.span_of() == (0.0, 0.0)
        assert tl.makespan() == 0.0
        assert len(tl) == 0

    def test_worker_end(self):
        tl = self._sample()
        assert tl.worker_end("a") == 5.0
        assert tl.worker_end("b") == 3.0
        with pytest.raises(KeyError):
            tl.worker_end("ghost")

    def test_phase_total(self):
        tl = self._sample()
        assert tl.phase_total(Phase.PULL) == pytest.approx(1.5)
        assert tl.phase_total(Phase.PULL, "a") == pytest.approx(1.0)
        assert tl.phase_total(Phase.SYNC) == pytest.approx(0.5)

    def test_phase_totals_dict(self):
        totals = self._sample().phase_totals("a")
        assert totals[Phase.COMPUTE] == pytest.approx(3.0)
        assert totals[Phase.SYNC] == 0.0

    def test_epoch_filtering(self):
        tl = Timeline()
        tl.add("a", Phase.COMPUTE, 0, 1, epoch=0)
        tl.add("a", Phase.COMPUTE, 1, 2, epoch=1)
        assert len(tl.epoch_spans(0)) == 1
        assert tl.epoch_time(1) == pytest.approx(1.0)
        with pytest.raises(KeyError):
            tl.epoch_time(9)

    def test_extend_type_checked(self):
        tl = Timeline()
        with pytest.raises(TypeError):
            tl.extend(["not a span"])

    def test_spans_copy(self):
        tl = self._sample()
        spans = tl.spans
        spans.clear()
        assert len(tl) == 6


class TestAsciiGantt:
    def test_contains_all_lanes_and_legend(self):
        tl = Timeline()
        tl.add("worker-x", Phase.PULL, 0, 1)
        tl.add("worker-y", Phase.COMPUTE, 1, 4)
        art = tl.ascii_gantt(width=40)
        assert "worker-x" in art
        assert "worker-y" in art
        assert "legend" in art

    def test_glyphs_present(self):
        tl = Timeline()
        tl.add("w", Phase.PULL, 0, 2)
        tl.add("w", Phase.COMPUTE, 2, 8)
        tl.add("w", Phase.PUSH, 8, 10)
        tl.add("srv", Phase.SYNC, 10, 11)
        art = tl.ascii_gantt(width=44)
        assert "<" in art and "#" in art and ">" in art and "S" in art

    def test_compute_dominates_width(self):
        tl = Timeline()
        tl.add("w", Phase.PULL, 0, 1)
        tl.add("w", Phase.COMPUTE, 1, 9)
        tl.add("w", Phase.PUSH, 9, 10)
        row = tl.ascii_gantt(width=50).splitlines()[0]
        assert row.count("#") > 5 * row.count("<")

    def test_min_width_enforced(self):
        with pytest.raises(ValueError):
            Timeline().ascii_gantt(width=2)
