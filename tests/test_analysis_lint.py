"""Tests for hcclint: the framework and every domain rule.

Each rule gets a positive fixture (the violation fires), a negative
fixture (clean code passes), and a suppression fixture (the violation
is silenced by a ``# hcclint: disable=...`` comment).
"""

import json
import textwrap

from repro.analysis.lint import (
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    max_severity,
)
from repro.analysis.reporters import render_json, render_rules, render_text

HOT = "src/repro/mf/kernels.py"          # hot path + kernel module
WORKER = "src/repro/parallel/executor.py"  # hot path + worker loop
COST = "src/repro/core/cost_model.py"    # cost-model module
NEUTRAL = "src/repro/experiments/report.py"  # none of the above


def issues_for(source, path=NEUTRAL, rule=None):
    found = lint_source(textwrap.dedent(source), path)
    if rule is not None:
        found = [i for i in found if i.rule == rule]
    return found


class TestFramework:
    def test_rule_registry_complete(self):
        rules = all_rules()
        ids = {r.rule_id for r in rules}
        assert {"HCC101", "HCC102", "HCC103", "HCC104", "HCC105",
                "HCC106", "HCC107", "HCC108", "HCC109", "HCC110",
                "HCC111", "HCC112"} <= ids
        # ids and names are unique
        assert len(ids) == len(rules)
        assert len({r.name for r in rules}) == len(rules)
        assert all(r.rationale for r in rules)

    def test_syntax_error_is_reported_not_raised(self):
        issues = lint_source("def broken(:\n    pass\n", "bad.py")
        assert len(issues) == 1
        assert issues[0].rule == "parse-error"
        assert issues[0].severity is Severity.ERROR

    def test_clean_file_has_no_issues(self):
        assert issues_for("x = 1\n") == []

    def test_max_severity(self):
        assert max_severity([]) is None
        issues = issues_for("def f(a=[]):\n    return a\n")
        assert max_severity(issues) is Severity.ERROR

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("def f(a=[]):\n    return a\n")
        (tmp_path / "pkg" / "data.txt").write_text("not python")
        issues = lint_paths([str(tmp_path)])
        assert [i.rule for i in issues] == ["mutable-default"]

    def test_suppression_by_rule_id(self):
        src = "def f(a=[]):  # hcclint: disable=HCC105\n    return a\n"
        assert issues_for(src) == []

    def test_suppression_all(self):
        src = "def f(a=[]):  # hcclint: disable=all\n    return a\n"
        assert issues_for(src) == []

    def test_file_level_suppression(self):
        src = (
            "# hcclint: disable-file=mutable-default\n"
            "def f(a=[]):\n    return a\n"
            "def g(b={}):\n    return b\n"
        )
        assert issues_for(src) == []

    def test_comment_only_line_suppresses_next_line(self):
        src = (
            "# hcclint: disable=mutable-default\n"
            "def f(a=[]):\n    return a\n"
        )
        assert issues_for(src) == []

    def test_suppression_is_line_scoped(self):
        src = (
            "def f(a=[]):  # hcclint: disable=mutable-default\n    return a\n"
            "def g(b=[]):\n    return b\n"
        )
        issues = issues_for(src, rule="mutable-default")
        assert len(issues) == 1
        assert issues[0].line == 3


class TestReporters:
    def test_text_output(self):
        issues = issues_for("def f(a=[]):\n    return a\n")
        text = render_text(issues)
        assert "HCC105" in text
        assert "mutable-default" in text
        assert "1 issue (1 error)" in text

    def test_text_clean(self):
        assert "clean" in render_text([])

    def test_json_round_trip(self):
        issues = issues_for("def f(a=[]):\n    return a\n")
        payload = json.loads(render_json(issues))
        assert payload["summary"]["errors"] == 1
        assert payload["issues"][0]["rule_id"] == "HCC105"
        assert payload["issues"][0]["line"] == 1

    def test_rule_catalogue(self):
        text = render_rules(all_rules())
        assert "HCC101" in text and "shm-lifecycle" in text


class TestShmLifecycle:
    def test_unguarded_creation_flagged(self):
        src = """
        from multiprocessing import shared_memory

        def leak(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            return shm.name
        """
        issues = issues_for(src, rule="shm-lifecycle")
        assert len(issues) == 1
        assert issues[0].severity is Severity.ERROR

    def test_try_finally_is_clean(self):
        src = """
        from multiprocessing import shared_memory

        def ok(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                return bytes(shm.buf[:4])
            finally:
                shm.close()
                shm.unlink()
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_exitstack_is_clean(self):
        src = """
        def ok(stack, spec):
            arr = stack.enter_context(SharedArray.attach(spec))
            return arr.array.sum()
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_callback_registration_is_clean(self):
        src = """
        def ok(stack, shape):
            arr = SharedArray.create(shape)
            stack.callback(arr.unlink)
            return arr
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_ownership_transfer_by_return_is_clean(self):
        src = """
        def factory(shape):
            return SharedArray.create(shape)
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_self_assignment_is_clean(self):
        src = """
        class Holder:
            def __init__(self, n):
                self._shm = shared_memory.SharedMemory(create=True, size=n)
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_acquire_then_guard_try_is_clean(self):
        src = """
        def ok(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                arr = wrap(shm)
                return arr
            except BaseException:
                shm.close()
                shm.unlink()
                raise
        """
        assert issues_for(src, rule="shm-lifecycle") == []

    def test_suppression(self):
        src = """
        def leak(n):
            shm = shared_memory.SharedMemory(create=True, size=n)  # hcclint: disable=shm-lifecycle
            register_global(shm)
        """
        assert issues_for(src, rule="shm-lifecycle") == []


class TestHotCopy:
    def test_copy_in_hot_module_flagged(self):
        src = """
        def step(buf):
            local = buf.copy()
            return local
        """
        issues = issues_for(src, path=HOT, rule="hot-copy")
        assert len(issues) == 1
        assert ".copy()" in issues[0].message

    def test_astype_without_copy_false_flagged(self):
        src = """
        def step(x, np):
            return x.astype(np.float32)
        """
        assert len(issues_for(src, path=HOT, rule="hot-copy")) == 1

    def test_astype_with_copy_false_clean(self):
        src = """
        def step(x, np):
            return x.astype(np.float32, copy=False)
        """
        assert issues_for(src, path=HOT, rule="hot-copy") == []

    def test_cold_module_not_flagged(self):
        src = """
        def report(buf):
            return buf.copy()
        """
        assert issues_for(src, path=NEUTRAL, rule="hot-copy") == []

    def test_hot_marker_opts_in_anywhere(self):
        src = """
        # hcclint: hot-path
        def inner_loop(buf):
            return buf.copy()
        """
        assert len(issues_for(src, path=NEUTRAL, rule="hot-copy")) == 1

    def test_suppression(self):
        src = """
        def step(buf):
            local = buf.copy()  # hcclint: disable=hot-copy
            return local
        """
        assert issues_for(src, path=HOT, rule="hot-copy") == []

    def test_gather_in_loop_is_info(self):
        src = """
        def step(data, batches):
            for sel in batches:
                yield data[sel]
        """
        issues = issues_for(src, path=HOT, rule="hot-gather")
        assert len(issues) == 1
        assert issues[0].severity is Severity.INFO


class TestKernelPromotion:
    def test_float64_attribute_flagged(self):
        src = """
        def accumulate(x, np):
            return x.astype(np.float64, copy=False)
        """
        issues = issues_for(src, path=HOT, rule="kernel-promotion")
        assert len(issues) == 1
        assert issues[0].severity is Severity.ERROR

    def test_dtype_string_flagged(self):
        src = 'err = np.zeros(4, dtype="float64")\n'
        assert len(issues_for(src, path=HOT, rule="kernel-promotion")) == 1

    def test_dtype_builtin_float_flagged(self):
        src = "err = np.zeros(4, dtype=float)\n"
        assert len(issues_for(src, path=HOT, rule="kernel-promotion")) == 1

    def test_float32_clean(self):
        src = "err = np.zeros(4, dtype=np.float32)\n"
        assert issues_for(src, path=HOT, rule="kernel-promotion") == []

    def test_non_kernel_module_not_scoped(self):
        src = "stats = np.zeros(4, dtype=np.float64)\n"
        assert issues_for(src, path=COST, rule="kernel-promotion") == []

    def test_suppression(self):
        src = "loss = np.square(err, dtype=np.float64)  # hcclint: disable=kernel-promotion\n"
        assert issues_for(src, path=HOT, rule="kernel-promotion") == []


class TestFrozenDataclass:
    def test_unfrozen_plan_flagged(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class ShardPlan:
            fractions: tuple
        """
        issues = issues_for(src, rule="frozen-dataclass")
        assert len(issues) == 1
        assert "ShardPlan" in issues[0].message

    def test_dataclass_call_without_frozen_flagged(self):
        src = """
        from dataclasses import dataclass

        @dataclass(eq=True)
        class WireSpec:
            nbytes: int
        """
        assert len(issues_for(src, rule="frozen-dataclass")) == 1

    def test_frozen_clean(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ShardPlan:
            fractions: tuple
        """
        assert issues_for(src, rule="frozen-dataclass") == []

    def test_other_names_exempt(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class TrainResult:
            rmse: float
        """
        assert issues_for(src, rule="frozen-dataclass") == []

    def test_suppression(self):
        src = """
        from dataclasses import dataclass

        # hcclint: disable=frozen-dataclass
        @dataclass
        class MutablePlan:
            fractions: list
        """
        assert issues_for(src, rule="frozen-dataclass") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert len(issues_for("def f(a=[]):\n    return a\n",
                              rule="mutable-default")) == 1

    def test_dict_call_default_flagged(self):
        assert len(issues_for("def f(a=dict()):\n    return a\n",
                              rule="mutable-default")) == 1

    def test_kwonly_default_flagged(self):
        assert len(issues_for("def f(*, a={}):\n    return a\n",
                              rule="mutable-default")) == 1

    def test_none_default_clean(self):
        assert issues_for("def f(a=None):\n    return a or []\n",
                          rule="mutable-default") == []

    def test_tuple_default_clean(self):
        assert issues_for("def f(a=()):\n    return a\n",
                          rule="mutable-default") == []


class TestPQMutation:
    def test_assignment_outside_owners_flagged(self):
        src = """
        def tamper(model, rows):
            model.P[rows] = 0.0
        """
        issues = issues_for(src, path=NEUTRAL, rule="pq-mutation")
        assert len(issues) == 1
        assert ".P" in issues[0].message

    def test_augmented_q_flagged(self):
        src = """
        def tamper(model, delta):
            model.Q += delta
        """
        assert len(issues_for(src, path=NEUTRAL, rule="pq-mutation")) == 1

    def test_rebinding_attribute_flagged(self):
        src = """
        def tamper(model, new_p):
            model.P = new_p
        """
        assert len(issues_for(src, path=NEUTRAL, rule="pq-mutation")) == 1

    def test_read_access_clean(self):
        src = """
        def inspect(model):
            return model.P.mean() + model.Q.mean()
        """
        assert issues_for(src, path=NEUTRAL, rule="pq-mutation") == []

    def test_owner_module_exempt(self):
        src = """
        def merge(model, delta):
            model.Q += delta
        """
        assert issues_for(src, path=HOT, rule="pq-mutation") == []

    def test_suppression(self):
        src = """
        def tamper(model, delta):
            model.Q += delta  # hcclint: disable=pq-mutation
        """
        assert issues_for(src, path=NEUTRAL, rule="pq-mutation") == []


class TestBlockingCall:
    def test_sleep_flagged(self):
        src = """
        import time

        def loop(queue):
            while True:
                time.sleep(0.1)
        """
        issues = issues_for(src, path=WORKER, rule="blocking-call")
        assert len(issues) == 1
        assert issues[0].severity is Severity.ERROR

    def test_join_without_timeout_flagged(self):
        src = """
        def reap(procs):
            for proc in procs:
                proc.join()
        """
        assert len(issues_for(src, path=WORKER, rule="blocking-call")) == 1

    def test_join_with_timeout_clean(self):
        src = """
        def reap(procs):
            for proc in procs:
                proc.join(timeout=5.0)
        """
        assert issues_for(src, path=WORKER, rule="blocking-call") == []

    def test_string_join_not_flagged(self):
        src = """
        def render(parts):
            return ", ".join(parts)
        """
        assert issues_for(src, path=WORKER, rule="blocking-call") == []

    def test_non_worker_module_exempt(self):
        src = """
        import time

        def poll():
            time.sleep(1)
        """
        assert issues_for(src, path=NEUTRAL, rule="blocking-call") == []

    def test_suppression(self):
        src = """
        def loop(barrier):
            barrier.wait()  # hcclint: disable=blocking-call
        """
        assert issues_for(src, path=WORKER, rule="blocking-call") == []


class TestUnitMix:
    def test_bytes_plus_seconds_flagged(self):
        src = """
        def epoch_total(pull_bytes, sync_time):
            return pull_bytes + sync_time
        """
        issues = issues_for(src, path=COST, rule="unit-mix")
        assert len(issues) == 1
        assert "bytes" in issues[0].message and "seconds" in issues[0].message

    def test_us_plus_seconds_flagged(self):
        src = """
        def total(latency_us, sync_time):
            return latency_us + sync_time
        """
        assert len(issues_for(src, path=COST, rule="unit-mix")) == 1

    def test_same_unit_clean(self):
        src = """
        def total(pull_time, push_time):
            return pull_time + push_time
        """
        assert issues_for(src, path=COST, rule="unit-mix") == []

    def test_converted_quantity_clean(self):
        src = """
        def total(nbytes, bandwidth, sync_time):
            return nbytes / bandwidth + sync_time
        """
        assert issues_for(src, path=COST, rule="unit-mix") == []

    def test_non_cost_module_exempt(self):
        src = """
        def total(pull_bytes, sync_time):
            return pull_bytes + sync_time
        """
        assert issues_for(src, path=NEUTRAL, rule="unit-mix") == []

    def test_suppression(self):
        src = """
        def total(pull_bytes, sync_time):
            return pull_bytes + sync_time  # hcclint: disable=unit-mix
        """
        assert issues_for(src, path=COST, rule="unit-mix") == []


class TestWallClock:
    TIMING = "src/repro/obs/spans.py"  # timing module (obs/ tree)

    def test_time_time_flagged_in_timing_module(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        issues = issues_for(src, path=self.TIMING, rule="wall-clock")
        assert len(issues) == 1
        assert "perf_counter" in issues[0].message
        assert issues[0].severity is Severity.INFO

    def test_profiler_module_is_timing(self):
        src = "import time\nt = time.time()\n"
        assert len(
            issues_for(src, path="src/repro/hardware/profiler.py", rule="wall-clock")
        ) == 1

    def test_perf_counter_clean(self):
        src = """
        import time

        def stamp():
            return time.perf_counter()
        """
        assert issues_for(src, path=self.TIMING, rule="wall-clock") == []

    def test_non_timing_module_exempt(self):
        src = "import time\nt = time.time()\n"
        assert issues_for(src, path=NEUTRAL, rule="wall-clock") == []

    def test_monotonic_flagged_as_second_time_base(self):
        # time.monotonic() is monotonic but a *different* base than
        # perf_counter; mixing bases misaligns cross-process spans
        src = """
        import time

        def stamp():
            return time.monotonic()
        """
        issues = issues_for(src, path=self.TIMING, rule="wall-clock")
        assert len(issues) == 1
        assert "perf_counter" in issues[0].message

    def test_bench_module_is_timing(self):
        src = "import time\nt = time.time()\n"
        assert len(
            issues_for(src, path="src/repro/obs/bench.py", rule="wall-clock")
        ) == 1

    def test_profile_module_is_timing(self):
        src = "import time\nt = time.monotonic()\n"
        assert len(
            issues_for(src, path="src/repro/obs/profile.py", rule="wall-clock")
        ) == 1

    def test_bench_module_named_beyond_prefix(self):
        # the explicit TIMING_MODULES entries must keep the rule alive
        # even if the files leave the repro/obs/ prefix someday
        from repro.analysis.hotpath import TIMING_MODULES

        assert "repro/obs/bench.py" in TIMING_MODULES
        assert "repro/obs/profile.py" in TIMING_MODULES

    def test_suppression(self):
        src = """
        import time
        t = time.time()  # hcclint: disable=wall-clock
        """
        assert issues_for(src, path=self.TIMING, rule="wall-clock") == []


class TestEpochLoop:
    FRAMEWORK = "src/repro/core/framework.py"  # legacy plane facade

    LOOP = """
    def train(self, server, epochs):
        for epoch in range(epochs):
            server.begin_epoch(epoch)
            server.sync(epoch)
    """

    def test_epoch_loop_in_facade_flagged(self):
        issues = issues_for(self.LOOP, path=self.FRAMEWORK, rule="epoch-loop")
        assert len(issues) == 1
        assert issues[0].severity is Severity.WARNING
        assert "EpochEngine" in issues[0].message

    def test_reporting_loop_without_stage_calls_clean(self):
        src = """
        def axis(self, epochs):
            out = []
            for epoch in range(epochs):
                out.append(self.cost * (epoch + 1))
            return out
        """
        assert issues_for(src, path=self.FRAMEWORK, rule="epoch-loop") == []

    def test_non_epoch_bound_clean(self):
        src = """
        def fan_out(self, n_workers, server):
            for rank in range(n_workers):
                server.push(rank)
        """
        assert issues_for(src, path=self.FRAMEWORK, rule="epoch-loop") == []

    def test_engine_module_is_the_sanctioned_home(self):
        assert issues_for(self.LOOP, path="src/repro/engine/pipeline.py",
                          rule="epoch-loop") == []

    def test_neutral_module_exempt(self):
        assert issues_for(self.LOOP, path=NEUTRAL, rule="epoch-loop") == []

    def test_rotation_loop_fires_without_suppression(self):
        src = """
        def rotate(self, epochs):
            for _ in range(epochs):
                self.run_rotation_step()
        """
        assert len(issues_for(src, path=self.FRAMEWORK, rule="epoch-loop")) == 1

    def test_suppression(self):
        src = """
        def rotate(self, epochs):
            for _ in range(epochs):  # hcclint: disable=epoch-loop
                self.run_rotation_step()
        """
        assert issues_for(src, path=self.FRAMEWORK, rule="epoch-loop") == []


class TestUnboundedWait:
    # an engine module that is NOT a worker-loop module, so HCC112 owns
    # all three attrs (in worker-loop modules HCC107 covers wait/join)
    ENGINE = "src/repro/engine/pipeline.py"

    def test_bare_rendezvous_flagged(self):
        src = """
        def rendezvous(barrier, proc, queue):
            barrier.wait()
            proc.join()
            return queue.get()
        """
        issues = issues_for(src, path=self.ENGINE, rule="unbounded-wait")
        assert len(issues) == 3
        assert all(i.severity is Severity.ERROR for i in issues)

    def test_timeout_kwarg_clean(self):
        src = """
        def rendezvous(barrier, proc, queue):
            barrier.wait(timeout=5.0)
            proc.join(timeout=5.0)
            return queue.get(timeout=5.0)
        """
        assert issues_for(src, path=self.ENGINE, rule="unbounded-wait") == []

    def test_positional_arg_clean(self):
        # a positional arg is a timeout for these APIs (join(5.0))
        src = """
        def reap(proc):
            proc.join(5.0)
        """
        assert issues_for(src, path=self.ENGINE, rule="unbounded-wait") == []

    def test_string_receivers_not_flagged(self):
        src = """
        def render(parts):
            return ", ".join(parts) + f"{parts}".join(parts)
        """
        assert issues_for(src, path=self.ENGINE, rule="unbounded-wait") == []

    def test_worker_loop_module_only_adds_get(self):
        # wait/join there belong to HCC107; HCC112 must not double-report
        src = """
        def rendezvous(barrier, proc, queue):
            barrier.wait()
            proc.join()
            return queue.get()
        """
        issues = issues_for(src, path=WORKER, rule="unbounded-wait")
        assert len(issues) == 1
        assert "get" in issues[0].message

    def test_module_outside_coordination_tree_exempt(self):
        src = """
        def fetch(queue):
            return queue.get()
        """
        assert issues_for(src, path=NEUTRAL, rule="unbounded-wait") == []

    def test_suppression(self):
        src = """
        def fetch(queue):
            return queue.get()  # hcclint: disable=unbounded-wait
        """
        assert issues_for(src, path=self.ENGINE, rule="unbounded-wait") == []


class TestRepoIsClean:
    def test_src_tree_has_no_warnings_or_errors(self):
        """The acceptance gate: `repro lint src/` must be clean."""
        issues = lint_paths(["src"])
        blockers = [i for i in issues if i.severity >= Severity.WARNING]
        assert blockers == [], render_text(blockers)
